package oltp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"

	"github.com/ddgms/ddgms/internal/storage"
)

// Change-data capture over the write-ahead log. TailWAL re-reads the
// framed segments that Commit already writes, so the change feed needs no
// second log and is exactly as durable as the store itself. The contract
// a consumer can rely on:
//
//   - Only committed transactions are ever surfaced, whole, in commit
//     order. Data records whose commit marker never landed (a poisoned
//     log that was later reopened, or a torn tail) are silently skipped.
//   - Reads stop at the fsynced prefix of the tail segment, so a change
//     is only emitted once it would also survive a crash.
//   - The cursor (segment sequence + byte offset) is plain data; a
//     consumer persists it wherever it likes and resumes with TailWAL.
//     A cursor that points below the oldest surviving segment — the log
//     was checkpoint-truncated past it — fails with ErrTailGap, and the
//     consumer must rebuild from SnapshotWithLSN. RetainWALFrom lets a
//     live consumer pin its unread segments so this only happens across
//     restarts.

// WALCursor is a log sequence number: a position in the segmented WAL.
// The zero cursor means "from the beginning of the log", which is only
// valid while the full history is still on disk (no checkpoint yet).
type WALCursor struct {
	Seq uint64 `json:"seq"` // segment sequence number
	Off int64  `json:"off"` // byte offset within the segment
}

// IsZero reports whether c is the zero cursor.
func (c WALCursor) IsZero() bool { return c.Seq == 0 && c.Off == 0 }

// Less orders cursors by log position.
func (c WALCursor) Less(o WALCursor) bool {
	if c.Seq != o.Seq {
		return c.Seq < o.Seq
	}
	return c.Off < o.Off
}

// String renders seq:off.
func (c WALCursor) String() string { return fmt.Sprintf("%d:%d", c.Seq, c.Off) }

// ChangeOp classifies one row change.
type ChangeOp uint8

// Change operations. They mirror the WAL record ops.
const (
	ChangeInsert ChangeOp = ChangeOp(opInsert)
	ChangeUpdate ChangeOp = ChangeOp(opUpdate)
	ChangeDelete ChangeOp = ChangeOp(opDelete)
)

// String names the operation.
func (op ChangeOp) String() string {
	switch op {
	case ChangeInsert:
		return "insert"
	case ChangeUpdate:
		return "update"
	case ChangeDelete:
		return "delete"
	case ChangeMeta:
		return "meta"
	}
	return fmt.Sprintf("ChangeOp(%d)", uint8(op))
}

// Change is one row mutation within a committed transaction. Row is the
// full after-image for inserts and updates and nil for deletes.
type Change struct {
	Op  ChangeOp
	ID  RowID
	Row Row
}

// CommittedTx is one committed transaction's change set. End is the
// cursor just past its commit marker: resuming from End replays nothing
// of this transaction again.
type CommittedTx struct {
	Tx      uint64
	Changes []Change
	End     WALCursor
}

// Tailing errors.
var (
	// ErrTailGap reports that the WAL no longer contains the segment a
	// cursor points into (a checkpoint swept it). The consumer's only
	// correct move is a full resync from SnapshotWithLSN.
	ErrTailGap = errors.New("oltp: WAL position checkpoint-truncated; resync from snapshot")
	// ErrNoWAL reports tailing a store without durability (empty dir).
	ErrNoWAL = errors.New("oltp: store has no WAL to tail")
)

// TailWAL reads committed transactions from the cursor onward, at most
// maxTx of them (0 or negative means unlimited), and returns them with
// the cursor to resume from. When fewer than maxTx transactions are
// available the returned cursor is the durable end of the log, so a
// caller can poll TailWAL(cur, n) in a loop and never re-read data. The
// zero cursor starts from the beginning of history and is refused with
// ErrTailGap once a checkpoint has truncated that history.
//
// TailWAL holds the WAL lock while reading, so it observes the log only
// at commit boundaries; concurrent commits wait. Reads go through the
// store's (possibly fault-injected) filesystem.
func (s *Store) TailWAL(from WALCursor, maxTx int) ([]CommittedTx, WALCursor, error) {
	if s.dir == "" {
		return nil, from, ErrNoWAL
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.closed || s.wal == nil {
		return nil, from, ErrClosed
	}

	magic := int64(len(segMagic))
	tailSeq := s.wal.seq
	tailEnd := s.wal.synced
	if tailEnd < magic {
		tailEnd = magic // freshly created segment: header not yet flushed
	}

	lay, err := scanWalDir(s.fs, s.dir)
	if err != nil {
		return nil, from, err
	}
	if from.IsZero() {
		if len(lay.ckpts) > 0 || len(lay.segs) == 0 || lay.segs[0] != 1 {
			return nil, from, fmt.Errorf("%w (no full history for zero cursor)", ErrTailGap)
		}
		from = WALCursor{Seq: 1, Off: magic}
	}
	if from.Seq > tailSeq {
		// A consumer that drained segment N can legitimately hold a cursor
		// normalised to the start of N+1 before N+1 exists.
		if from.Seq == tailSeq+1 && from.Off <= magic {
			return nil, from, nil
		}
		return nil, from, fmt.Errorf("%w (cursor %s ahead of tail segment %d)", ErrTailGap, from, tailSeq)
	}
	present := false
	for _, seq := range lay.segs {
		if seq == from.Seq {
			present = true
			break
		}
	}
	if !present {
		return nil, from, fmt.Errorf("%w (segment %d gone, oldest is %d)", ErrTailGap, from.Seq, func() uint64 {
			if len(lay.segs) == 0 {
				return 0
			}
			return lay.segs[0]
		}())
	}

	var (
		txs     []CommittedTx
		pending = make(map[uint64][]Change)
		cur     = from
	)
	for seq := from.Seq; seq <= tailSeq; seq++ {
		name := segName(seq)
		start := magic
		if seq == from.Seq && from.Off > start {
			start = from.Off
		}
		data, size, err := s.readSegmentFrom(name, start)
		if err != nil {
			if errors.Is(err, errShortHeader) {
				if seq == tailSeq {
					cur = WALCursor{Seq: seq, Off: magic}
					break // segment created, nothing durable in it yet
				}
				return txs, cur, fmt.Errorf("%w: segment %s: truncated header (%d bytes)", errCorrupt, name, size)
			}
			if errors.Is(err, errBadMagic) {
				return txs, cur, fmt.Errorf("%w: segment %s: bad magic at offset 0", errCorrupt, name)
			}
			return txs, cur, err
		}

		limit := size
		if seq == tailSeq && tailEnd < limit {
			limit = tailEnd // never read past the fsynced prefix
		}

		off := start
		if off > limit {
			return txs, cur, fmt.Errorf("%w (cursor offset %d past end %d of segment %d)", ErrTailGap, off, limit, seq)
		}
		cur = WALCursor{Seq: seq, Off: off}
		for off < limit {
			rem := limit - off
			if rem < frameHeader {
				if seq == tailSeq {
					break // incomplete durable tail; stop before it
				}
				return txs, cur, fmt.Errorf("%w: segment %s: truncated frame header at offset %d", errCorrupt, name, off)
			}
			length := binary.LittleEndian.Uint32(data[off-start : off-start+4])
			sum := binary.LittleEndian.Uint32(data[off-start+4 : off-start+8])
			if length > maxFrame {
				return txs, cur, fmt.Errorf("%w: segment %s: implausible record length %d at offset %d", errCorrupt, name, length, off)
			}
			if rem < frameHeader+int64(length) {
				if seq == tailSeq {
					break
				}
				return txs, cur, fmt.Errorf("%w: segment %s: truncated record at offset %d", errCorrupt, name, off)
			}
			payload := data[off-start+frameHeader : off-start+frameHeader+int64(length)]
			if crc32.Checksum(payload, castagnoli) != sum {
				return txs, cur, fmt.Errorf("%w: segment %s: checksum mismatch at offset %d", errCorrupt, name, off)
			}
			rec, err := decodeRecordPayload(payload)
			if err != nil {
				return txs, cur, fmt.Errorf("%w: segment %s: undecodable record at offset %d: %v", errCorrupt, name, off, err)
			}
			off += frameHeader + int64(length)
			if rec.op == opCommit {
				if chs := pending[rec.tx]; len(chs) > 0 {
					txs = append(txs, CommittedTx{Tx: rec.tx, Changes: chs, End: WALCursor{Seq: seq, Off: off}})
					delete(pending, rec.tx)
					cur = WALCursor{Seq: seq, Off: off}
					if maxTx > 0 && len(txs) >= maxTx {
						return txs, cur, nil
					}
				}
				continue
			}
			pending[rec.tx] = append(pending[rec.tx], Change{Op: ChangeOp(rec.op), ID: rec.id, Row: rec.row})
		}
		// Transactions never span segments, so whatever is still pending
		// at a segment boundary was abandoned by a poisoned log and will
		// never commit; it is safe to advance past it.
		for tx := range pending {
			delete(pending, tx)
		}
		if seq == tailSeq {
			cur = WALCursor{Seq: seq, Off: limit}
		} else {
			cur = WALCursor{Seq: seq + 1, Off: magic}
		}
	}
	return txs, cur, nil
}

// Sentinel errors readSegmentFrom reports so TailWAL can keep its exact
// diagnostics.
var (
	errShortHeader = errors.New("oltp: segment shorter than header")
	errBadMagic    = errors.New("oltp: segment header magic mismatch")
)

// readSegmentFrom opens a WAL segment, verifies its header, and returns
// the bytes from offset start onward plus the segment's total size. A
// polling consumer holds a cursor near the tail of a large segment; when
// the file supports seeking this reads only the unconsumed suffix rather
// than the whole segment, so poll cost tracks the unread bytes, not the
// log size. On errShortHeader the returned size is the bytes present.
func (s *Store) readSegmentFrom(name string, start int64) ([]byte, int64, error) {
	magic := int64(len(segMagic))
	f, err := s.fs.Open(filepath.Join(s.dir, name))
	if err != nil {
		return nil, 0, fmt.Errorf("oltp: opening WAL segment for tail: %w", err)
	}
	defer f.Close()
	hdr := make([]byte, magic)
	n, err := io.ReadFull(f, hdr)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, int64(n), errShortHeader
		}
		return nil, 0, fmt.Errorf("oltp: reading WAL segment %s: %w", name, err)
	}
	if string(hdr) != segMagic {
		return nil, 0, errBadMagic
	}
	if sk, ok := f.(io.Seeker); ok {
		size, err := sk.Seek(0, io.SeekEnd)
		if err != nil {
			return nil, 0, fmt.Errorf("oltp: sizing WAL segment %s: %w", name, err)
		}
		if start >= size {
			return nil, size, nil
		}
		if _, err := sk.Seek(start, io.SeekStart); err != nil {
			return nil, 0, fmt.Errorf("oltp: seeking WAL segment %s: %w", name, err)
		}
		data, err := io.ReadAll(f)
		if err != nil {
			return nil, 0, fmt.Errorf("oltp: reading WAL segment %s: %w", name, err)
		}
		return data, start + int64(len(data)), nil
	}
	// Non-seekable filesystems fall back to discarding the consumed
	// prefix; a short copy means the segment ends before start.
	if skip := start - magic; skip > 0 {
		n, err := io.CopyN(io.Discard, f, skip)
		if err == io.EOF {
			return nil, magic + n, nil
		}
		if err != nil {
			return nil, 0, fmt.Errorf("oltp: reading WAL segment %s: %w", name, err)
		}
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, fmt.Errorf("oltp: reading WAL segment %s: %w", name, err)
	}
	return data, start + int64(len(data)), nil
}

// DurableLSN reports the current durable end of the log: the cursor a
// consumer bootstrapping from live state would start tailing from.
func (s *Store) DurableLSN() (WALCursor, error) {
	if s.dir == "" {
		return WALCursor{}, ErrNoWAL
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.closed || s.wal == nil {
		return WALCursor{}, ErrClosed
	}
	return s.durableLSNLocked(), nil
}

// durableLSNLocked needs s.walMu held.
func (s *Store) durableLSNLocked() WALCursor {
	off := s.wal.synced
	if m := int64(len(segMagic)); off < m {
		off = m
	}
	return WALCursor{Seq: s.wal.seq, Off: off}
}

// StoreSnapshot is a consistent copy of committed state plus the log
// position it corresponds to: tailing from LSN yields exactly the
// commits not included in the table.
type StoreSnapshot struct {
	Table *storage.Table
	IDs   []RowID // row id of each table row, ascending
	LSN   WALCursor
	// Meta is the meta applier's state blob at snapshot time (nil when
	// no applier is registered); replication bootstrap ships it so a
	// resyncing follower's meta state is replaced with its rows.
	Meta []byte
	// Commits and LastCommitUnixNano mirror CommitStats at snapshot time.
	Commits            uint64
	LastCommitUnixNano int64
}

// SnapshotWithLSN is Snapshot plus the row-id mapping and the WAL cursor
// the snapshot is consistent with. Commit applies state strictly after
// logging under the same store lock, so under the read lock every logged
// commit is applied and the durable LSN matches the visible state. For
// an in-memory store the LSN is zero and tailing is unavailable.
func (s *Store) SnapshotWithLSN() (*StoreSnapshot, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]RowID, 0, len(s.rows))
	for id := range s.rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	tbl, err := storage.NewTable(s.schema)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		if err := tbl.AppendRow(s.rows[id].row); err != nil {
			return nil, err
		}
	}
	snap := &StoreSnapshot{
		Table:              tbl,
		IDs:                ids,
		Commits:            s.commits,
		LastCommitUnixNano: s.lastCommitNano,
	}
	if s.opts.Meta != nil {
		snap.Meta = s.opts.Meta.Snapshot()
	}
	if s.dir != "" {
		s.walMu.Lock()
		if !s.closed && s.wal != nil {
			snap.LSN = s.durableLSNLocked()
		}
		s.walMu.Unlock()
	}
	return snap, nil
}
