package oltp

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"github.com/ddgms/ddgms/internal/faultfs"
)

// Tailing (change-data capture) tests. The contract under test: TailWAL
// surfaces every committed transaction exactly once, in commit order,
// with correct per-row change sets and resumable cursors; it never
// surfaces rolled-back or torn transactions; and it fails with
// ErrTailGap (never garbage) when checkpoints have truncated history
// past the cursor.

// tailOpts rotates segments aggressively but never checkpoints, so the
// zero cursor stays valid for full-history tests.
func tailOpts(fs faultfs.FS) Options {
	return Options{FS: fs, SegmentBytes: 1 << 10, CheckpointBytes: 1 << 30}
}

// replayTxs applies tailed change sets to an oracle state.
func replayTxs(st oracleState, txs []CommittedTx) {
	for _, tx := range txs {
		for _, ch := range tx.Changes {
			switch ch.Op {
			case ChangeDelete:
				delete(st, ch.ID)
			default:
				st[ch.ID] = ch.Row
			}
		}
	}
}

// drainTail polls TailWAL(cur, step) until no transactions remain.
func drainTail(t *testing.T, s *Store, from WALCursor, step int) ([]CommittedTx, WALCursor) {
	t.Helper()
	var all []CommittedTx
	cur := from
	for {
		txs, next, err := s.TailWAL(cur, step)
		if err != nil {
			t.Fatalf("TailWAL(%s): %v", cur, err)
		}
		all = append(all, txs...)
		if len(txs) == 0 {
			if next != cur && next.Less(cur) {
				t.Fatalf("empty poll moved cursor backwards: %s -> %s", cur, next)
			}
			return all, next
		}
		if !cur.Less(next) {
			t.Fatalf("cursor did not advance: %s -> %s", cur, next)
		}
		cur = next
	}
}

// TestTailWALRotationOrderAndChanges commits a workload that crosses
// many segment rotations and checks the tailed feed transaction by
// transaction: commit order, exact change sets, advancing End cursors,
// and that replaying the feed reproduces the store state.
func TestTailWALRotationOrderAndChanges(t *testing.T) {
	s, err := OpenWith(t.TempDir(), testSchema(), tailOpts(faultfs.OS{}))
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(7))
	var wantTxs [][]Change
	// Updates and deletes only touch rows committed by earlier
	// transactions; within one transaction the store coalesces writes to
	// the same row, which would make the oracle's per-op bookkeeping
	// disagree with the (correct) single WAL record.
	live := make([]RowID, 0, 128)
	touched := make(map[RowID]bool)
	for i := 0; i < 80; i++ {
		tx := s.Begin()
		var want []Change
		var inserted []RowID
		for n := 1 + rng.Intn(4); n > 0; n-- {
			switch {
			case len(live) > 4 && rng.Float64() < 0.25:
				id := live[rng.Intn(len(live))]
				if touched[id] {
					continue
				}
				touched[id] = true
				r := row(int64(id), rng.Float64()*10, "M")
				if err := tx.Update(id, r); err != nil {
					t.Fatalf("Update: %v", err)
				}
				want = append(want, Change{Op: ChangeUpdate, ID: id, Row: r})
			case len(live) > 8 && rng.Float64() < 0.2:
				last := len(live) - 1
				id := live[last]
				if touched[id] {
					continue
				}
				touched[id] = true
				live = live[:last]
				if err := tx.Delete(id); err != nil {
					t.Fatalf("Delete: %v", err)
				}
				want = append(want, Change{Op: ChangeDelete, ID: id})
			default:
				r := row(rng.Int63n(1000), rng.Float64()*10, "F")
				id, err := tx.Insert(r)
				if err != nil {
					t.Fatalf("Insert: %v", err)
				}
				inserted = append(inserted, id)
				want = append(want, Change{Op: ChangeInsert, ID: id, Row: r})
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit %d: %v", i, err)
		}
		wantTxs = append(wantTxs, want)
		live = append(live, inserted...)
		for id := range touched {
			delete(touched, id)
		}
	}

	txs, end, err := s.TailWAL(WALCursor{}, 0)
	if err != nil {
		t.Fatalf("TailWAL from zero: %v", err)
	}
	if len(txs) != len(wantTxs) {
		t.Fatalf("tailed %d transactions, committed %d", len(txs), len(wantTxs))
	}
	prevEnd := WALCursor{}
	for i, tx := range txs {
		if i > 0 && tx.Tx <= txs[i-1].Tx {
			t.Fatalf("tx ids out of commit order at %d: %d after %d", i, tx.Tx, txs[i-1].Tx)
		}
		if !prevEnd.Less(tx.End) {
			t.Fatalf("End cursor not advancing at tx %d: %s after %s", i, tx.End, prevEnd)
		}
		prevEnd = tx.End
		want := wantTxs[i]
		if len(tx.Changes) != len(want) {
			t.Fatalf("tx %d: %d changes, want %d", i, len(tx.Changes), len(want))
		}
		for j, ch := range tx.Changes {
			w := want[j]
			if ch.Op != w.Op || ch.ID != w.ID {
				t.Fatalf("tx %d change %d: got %s id %d, want %s id %d", i, j, ch.Op, ch.ID, w.Op, w.ID)
			}
			if w.Op == ChangeDelete {
				if ch.Row != nil {
					t.Fatalf("tx %d change %d: delete carries a row image", i, j)
				}
				continue
			}
			if len(ch.Row) != len(w.Row) {
				t.Fatalf("tx %d change %d: row width %d, want %d", i, j, len(ch.Row), len(w.Row))
			}
			for k := range ch.Row {
				if !ch.Row[k].Equal(w.Row[k]) {
					t.Fatalf("tx %d change %d col %d: got %v want %v", i, j, k, ch.Row[k], w.Row[k])
				}
			}
		}
	}
	if end.Seq < 3 {
		t.Fatalf("workload only reached segment %d; rotation not exercised", end.Seq)
	}

	// The feed replayed from nothing must equal the store state.
	got := make(oracleState)
	replayTxs(got, txs)
	if want := dumpState(s); !statesEqual(got, want) {
		t.Fatalf("replayed feed diverges from store state\n feed:  %s\n store: %s",
			describeState(got), describeState(want))
	}
}

// TestTailWALIncrementalPolling drains the same history one transaction
// per poll and checks it matches a single unlimited read, that the final
// cursor is the durable LSN, and that polling at the end re-reads
// nothing.
func TestTailWALIncrementalPolling(t *testing.T) {
	s, err := OpenWith(t.TempDir(), testSchema(), tailOpts(faultfs.OS{}))
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	defer s.Close()

	for i := 0; i < 40; i++ {
		tx := s.Begin()
		if _, err := tx.Insert(row(int64(i), float64(i), "F")); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}

	all, _, err := s.TailWAL(WALCursor{}, 0)
	if err != nil {
		t.Fatalf("TailWAL: %v", err)
	}
	stepped, end := drainTail(t, s, WALCursor{}, 1)
	if len(stepped) != len(all) {
		t.Fatalf("stepped drain saw %d txs, unlimited read saw %d", len(stepped), len(all))
	}
	for i := range stepped {
		if stepped[i].Tx != all[i].Tx {
			t.Fatalf("stepped drain diverges at %d: tx %d vs %d", i, stepped[i].Tx, all[i].Tx)
		}
	}

	durable, err := s.DurableLSN()
	if err != nil {
		t.Fatalf("DurableLSN: %v", err)
	}
	if end != durable {
		t.Fatalf("drained cursor %s != durable LSN %s", end, durable)
	}
	again, next, err := s.TailWAL(end, 0)
	if err != nil {
		t.Fatalf("TailWAL at end: %v", err)
	}
	if len(again) != 0 || next != end {
		t.Fatalf("poll at durable end re-read %d txs, cursor %s -> %s", len(again), end, next)
	}
}

// TestTailWALSkipsRollbacks checks that rolled-back and still-open
// transactions never appear in the feed.
func TestTailWALSkipsRollbacks(t *testing.T) {
	s, err := OpenWith(t.TempDir(), testSchema(), tailOpts(faultfs.OS{}))
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	defer s.Close()

	committed := 0
	for i := 0; i < 20; i++ {
		tx := s.Begin()
		if _, err := tx.Insert(row(int64(i), 1, "F")); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if i%3 == 0 {
			tx.Rollback()
			continue
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		committed++
	}
	// An open transaction at tail time must be invisible too.
	open := s.Begin()
	if _, err := open.Insert(row(999, 9, "M")); err != nil {
		t.Fatalf("Insert open: %v", err)
	}
	defer open.Rollback()

	txs, _, err := s.TailWAL(WALCursor{}, 0)
	if err != nil {
		t.Fatalf("TailWAL: %v", err)
	}
	if len(txs) != committed {
		t.Fatalf("tailed %d transactions, want only the %d committed", len(txs), committed)
	}
	for _, tx := range txs {
		for _, ch := range tx.Changes {
			if ch.Op == ChangeInsert && ch.Row[0].Int() == 999 {
				t.Fatal("uncommitted row surfaced in the feed")
			}
		}
	}
}

// TestTailWALCheckpointGap checks the truncation contract: once a
// checkpoint sweeps history, stale cursors (including the zero cursor)
// fail with ErrTailGap, while SnapshotWithLSN hands out a cursor that
// yields exactly the post-snapshot commits.
func TestTailWALCheckpointGap(t *testing.T) {
	s, err := OpenWith(t.TempDir(), testSchema(), crashOpts(faultfs.OS{}))
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	defer s.Close()

	commit := func(id int64) {
		t.Helper()
		tx := s.Begin()
		if _, err := tx.Insert(row(id, float64(id), "F")); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	for i := 0; i < 10; i++ {
		commit(int64(i))
	}
	_, preCkpt, err := s.TailWAL(WALCursor{}, 3)
	if err != nil {
		t.Fatalf("TailWAL before checkpoint: %v", err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	if _, _, err := s.TailWAL(WALCursor{}, 0); !errors.Is(err, ErrTailGap) {
		t.Fatalf("zero cursor after checkpoint: got %v, want ErrTailGap", err)
	}
	if _, _, err := s.TailWAL(preCkpt, 0); !errors.Is(err, ErrTailGap) {
		t.Fatalf("pre-checkpoint cursor %s: got %v, want ErrTailGap", preCkpt, err)
	}

	snap, err := s.SnapshotWithLSN()
	if err != nil {
		t.Fatalf("SnapshotWithLSN: %v", err)
	}
	if snap.Table.Len() != 10 {
		t.Fatalf("snapshot has %d rows, want 10", snap.Table.Len())
	}
	for i := 10; i < 13; i++ {
		commit(int64(i))
	}
	txs, _, err := s.TailWAL(snap.LSN, 0)
	if err != nil {
		t.Fatalf("TailWAL from snapshot LSN: %v", err)
	}
	if len(txs) != 3 {
		t.Fatalf("tail from snapshot LSN saw %d txs, want exactly the 3 post-snapshot commits", len(txs))
	}
}

// TestTailWALRetention checks that RetainWALFrom pins a consumer's
// unread segments across checkpoints, and that clearing the pin lets
// the next checkpoint open a gap again.
func TestTailWALRetention(t *testing.T) {
	s, err := OpenWith(t.TempDir(), testSchema(), tailOpts(faultfs.OS{}))
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	defer s.Close()

	commit := func(id int64) {
		t.Helper()
		tx := s.Begin()
		if _, err := tx.Insert(row(id, float64(id), "M")); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	for i := 0; i < 8; i++ {
		commit(int64(i))
	}
	_, cur, err := s.TailWAL(WALCursor{}, 4)
	if err != nil {
		t.Fatalf("TailWAL: %v", err)
	}

	s.RetainWALFrom(cur.Seq)
	for i := 8; i < 16; i++ {
		commit(int64(i))
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	txs, cur2, err := s.TailWAL(cur, 0)
	if err != nil {
		t.Fatalf("TailWAL from retained cursor after checkpoint: %v", err)
	}
	if len(txs) != 12 {
		t.Fatalf("retained tail saw %d txs, want the 12 unconsumed", len(txs))
	}

	s.RetainWALFrom(0)
	commit(99)
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if _, _, err := s.TailWAL(cur, 0); !errors.Is(err, ErrTailGap) {
		t.Fatalf("unpinned cursor after checkpoint: got %v, want ErrTailGap", err)
	}
	_ = cur2
}

// TestTailWALConcurrentWithCommits races a committer against a polling
// tailer (the follow-mode shape) and checks the feed converges on the
// exact committed history with no duplicates or holes.
func TestTailWALConcurrentWithCommits(t *testing.T) {
	s, err := OpenWith(t.TempDir(), testSchema(), tailOpts(faultfs.OS{}))
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	defer s.Close()

	const commits = 60
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < commits; i++ {
			tx := s.Begin()
			if _, err := tx.Insert(row(int64(i), float64(i), "F")); err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("Commit: %v", err)
				return
			}
		}
	}()

	var seen []CommittedTx
	cur := WALCursor{}
	for len(seen) < commits {
		txs, next, err := s.TailWAL(cur, 5)
		if err != nil {
			t.Fatalf("TailWAL: %v", err)
		}
		seen = append(seen, txs...)
		cur = next
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if len(seen) != commits {
		t.Fatalf("tailed %d txs, want %d", len(seen), commits)
	}
	got := make(oracleState)
	replayTxs(got, seen)
	if want := dumpState(s); !statesEqual(got, want) {
		t.Fatalf("concurrent feed diverges from store state\n feed:  %s\n store: %s",
			describeState(got), describeState(want))
	}
}

// TestTailWALCrashRecoverySweep crashes the randomized workload at a
// sweep of filesystem injection points, reopens on the surviving files,
// and checks the tailing contract post-crash: if full history survives,
// replaying it from the zero cursor reproduces exactly the recovered
// state (no torn or phantom transactions); and in every case the
// snapshot LSN is a valid resume point that yields exactly the commits
// made after recovery.
func TestTailWALCrashRecoverySweep(t *testing.T) {
	const (
		seed   = 31
		txns   = 60
		stride = 7
	)
	total := countWorkloadOps(t, seed, txns)
	fracs := []float64{0, 0.25, 0.5, 1}
	for i := 1; i <= total; i += stride {
		fault := faultfs.NewFault(faultfs.OS{}).CrashAt(i, fracs[i%len(fracs)])
		dir := t.TempDir()
		runCrashWorkload(dir, fault, seed, txns)
		if !fault.Crashed() {
			continue
		}

		s, err := OpenWith(dir, testSchema(), crashOpts(faultfs.OS{}))
		if err != nil {
			t.Fatalf("op %d: reopen after crash: %v", i, err)
		}
		recovered := dumpState(s)

		// Full-history replay, when the log still reaches back to genesis,
		// must land exactly on the recovered state.
		txs, _, err := s.TailWAL(WALCursor{}, 0)
		switch {
		case errors.Is(err, ErrTailGap):
			// A checkpoint truncated history; zero-cursor refusal is the
			// contract.
		case err != nil:
			t.Fatalf("op %d: TailWAL from zero after crash: %v", i, err)
		default:
			replayed := make(oracleState)
			replayTxs(replayed, txs)
			if !statesEqual(replayed, recovered) {
				t.Fatalf("op %d: full-history replay diverges from recovered state\n feed:  %s\n store: %s",
					i, describeState(replayed), describeState(recovered))
			}
		}

		// The snapshot LSN must resume cleanly: only post-snapshot commits.
		snap, err := s.SnapshotWithLSN()
		if err != nil {
			t.Fatalf("op %d: SnapshotWithLSN: %v", i, err)
		}
		tx := s.Begin()
		if _, err := tx.Insert(row(8888, 8, "F")); err != nil {
			t.Fatalf("op %d: insert after recovery: %v", i, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("op %d: commit after recovery: %v", i, err)
		}
		after, _, err := s.TailWAL(snap.LSN, 0)
		if err != nil {
			t.Fatalf("op %d: TailWAL from snapshot LSN: %v", i, err)
		}
		if len(after) != 1 || len(after[0].Changes) != 1 || after[0].Changes[0].Op != ChangeInsert {
			t.Fatalf("op %d: tail from snapshot LSN saw %d txs, want exactly the one post-snapshot commit", i, len(after))
		}
		s.Close()
	}
}
