package oltp

import "fmt"

// VerifyWALTail re-reads the entire retained WAL — from the oldest
// surviving segment through the fsynced durable end — and returns the
// durable cursor it verified up to. Every record's framing and CRC32-C
// checksum is validated and every commit re-assembled, exactly as a
// recovery or a replication tail would read them; the transactions
// themselves are discarded. It is the promotion gate: a follower may
// only start accepting writes once its local log is proven intact, so
// that nothing a departed primary shipped (and the follower acked) can
// be silently missing from the new timeline. Memory stays bounded — the
// log is verified in batches, not materialised.
func (s *Store) VerifyWALTail() (WALCursor, error) {
	if s.dir == "" {
		return WALCursor{}, ErrNoWAL
	}
	s.walMu.Lock()
	if s.closed || s.wal == nil {
		s.walMu.Unlock()
		return WALCursor{}, ErrClosed
	}
	lay, err := scanWalDir(s.fs, s.dir)
	s.walMu.Unlock()
	if err != nil {
		return WALCursor{}, err
	}
	if len(lay.segs) == 0 {
		return WALCursor{}, fmt.Errorf("%w (no segments on disk)", ErrNoWAL)
	}
	const batch = 1024
	from := WALCursor{Seq: lay.segs[0], Off: int64(len(segMagic))}
	verified := from
	for {
		txs, next, err := s.TailWAL(from, batch)
		if err != nil {
			return verified, err
		}
		verified = next
		if len(txs) < batch {
			return verified, nil
		}
		from = next
	}
}
