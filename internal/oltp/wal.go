package oltp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"github.com/ddgms/ddgms/internal/value"
)

// walOp tags a WAL record.
type walOp uint8

const (
	opInsert walOp = iota + 1
	opUpdate
	opDelete
	opCommit
)

// walRecord is one log entry. Data records carry a row payload; the commit
// marker carries only the transaction id.
type walRecord struct {
	tx  uint64
	op  walOp
	id  RowID
	row Row
}

// WAL wire format per record, little-endian varints:
//
//	op   1 byte
//	tx   uvarint
//	id   uvarint        (data records only)
//	nval uvarint        (data records with rows only)
//	vals nval × value   (kind byte + payload)
//
// Commit markers consist of just op+tx. The log is an append-only stream;
// recovery replays records of committed transactions and discards any
// trailing partial record (torn write).

type walWriter struct {
	f  *os.File
	bw *bufio.Writer
}

func openWalWriter(path string) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("oltp: opening WAL: %w", err)
	}
	return &walWriter{f: f, bw: bufio.NewWriter(f)}, nil
}

func (w *walWriter) append(rec walRecord) error {
	if err := w.bw.WriteByte(byte(rec.op)); err != nil {
		return err
	}
	writeUvarint(w.bw, rec.tx)
	if rec.op == opCommit {
		return nil
	}
	writeUvarint(w.bw, uint64(rec.id))
	if rec.op == opDelete {
		return nil
	}
	writeUvarint(w.bw, uint64(len(rec.row)))
	for _, v := range rec.row {
		if err := writeValue(w.bw, v); err != nil {
			return err
		}
	}
	return nil
}

func (w *walWriter) sync() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *walWriter) close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// replay reads the WAL at path (if present) and applies all committed
// transactions to the store. Uncommitted or torn trailing records are
// ignored, matching crash-recovery semantics.
func (s *Store) replay(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("oltp: opening WAL for replay: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)

	pending := make(map[uint64][]*writeOp)
	for {
		rec, err := readRecord(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn tail: stop replay here; everything before the tear that
			// committed is already applied.
			break
		}
		if rec.op == opCommit {
			for _, w := range pending[rec.tx] {
				s.applyLocked(w)
			}
			delete(pending, rec.tx)
			continue
		}
		pending[rec.tx] = append(pending[rec.tx], &writeOp{op: rec.op, id: rec.id, row: rec.row})
	}
	return nil
}

func readRecord(br *bufio.Reader) (walRecord, error) {
	opb, err := br.ReadByte()
	if err != nil {
		return walRecord{}, err
	}
	op := walOp(opb)
	if op < opInsert || op > opCommit {
		return walRecord{}, fmt.Errorf("oltp: bad WAL op %d", opb)
	}
	tx, err := binary.ReadUvarint(br)
	if err != nil {
		return walRecord{}, err
	}
	rec := walRecord{tx: tx, op: op}
	if op == opCommit {
		return rec, nil
	}
	id, err := binary.ReadUvarint(br)
	if err != nil {
		return walRecord{}, err
	}
	rec.id = RowID(id)
	if op == opDelete {
		return rec, nil
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return walRecord{}, err
	}
	const maxRowWidth = 1 << 16
	if n > maxRowWidth {
		return walRecord{}, fmt.Errorf("oltp: WAL row width %d exceeds limit", n)
	}
	rec.row = make(Row, n)
	for i := range rec.row {
		v, err := readValue(br)
		if err != nil {
			return walRecord{}, err
		}
		rec.row[i] = v
	}
	return rec, nil
}

func writeValue(bw *bufio.Writer, v value.Value) error {
	if err := bw.WriteByte(byte(v.Kind())); err != nil {
		return err
	}
	switch v.Kind() {
	case value.NAKind:
	case value.IntKind:
		writeVarint(bw, v.Int())
	case value.BoolKind:
		b := byte(0)
		if v.Bool() {
			b = 1
		}
		return bw.WriteByte(b)
	case value.TimeKind:
		writeVarint(bw, v.Time().UnixNano())
	case value.FloatKind:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Float()))
		_, err := bw.Write(buf[:])
		return err
	case value.StringKind:
		s := v.Str()
		writeUvarint(bw, uint64(len(s)))
		_, err := bw.WriteString(s)
		return err
	default:
		return fmt.Errorf("oltp: cannot encode kind %v", v.Kind())
	}
	return nil
}

func readValue(br *bufio.Reader) (value.Value, error) {
	kb, err := br.ReadByte()
	if err != nil {
		return value.NA(), err
	}
	switch value.Kind(kb) {
	case value.NAKind:
		return value.NA(), nil
	case value.IntKind:
		i, err := binary.ReadVarint(br)
		if err != nil {
			return value.NA(), err
		}
		return value.Int(i), nil
	case value.BoolKind:
		b, err := br.ReadByte()
		if err != nil {
			return value.NA(), err
		}
		return value.Bool(b != 0), nil
	case value.TimeKind:
		n, err := binary.ReadVarint(br)
		if err != nil {
			return value.NA(), err
		}
		return value.Time(timeUnixNano(n)), nil
	case value.FloatKind:
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return value.NA(), err
		}
		return value.Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case value.StringKind:
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return value.NA(), err
		}
		const maxString = 1 << 24
		if n > maxString {
			return value.NA(), fmt.Errorf("oltp: WAL string length %d exceeds limit", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return value.NA(), err
		}
		return value.Str(string(buf)), nil
	}
	return value.NA(), fmt.Errorf("oltp: bad WAL value kind %d", kb)
}

func writeUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	bw.Write(buf[:n])
}

func writeVarint(bw *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	bw.Write(buf[:n])
}
