package oltp

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/ddgms/ddgms/internal/faultfs"
	"github.com/ddgms/ddgms/internal/value"
)

// walOp tags a WAL record.
type walOp uint8

const (
	opInsert walOp = iota + 1
	opUpdate
	opDelete
	opCommit
	// opMeta is an opaque side-channel record (see meta.go). It is
	// encoded exactly like an insert: row id (always 0) plus a
	// single-string row holding the payload.
	opMeta
)

// walRecord is one log entry. Data records carry a row payload; the commit
// marker carries only the transaction id.
type walRecord struct {
	tx  uint64
	op  walOp
	id  RowID
	row Row
}

// On-disk format, version 2 (format 1 is the legacy unframed wal.log; see
// replayLegacy). The log is a sequence of numbered segment files
// wal-NNNNNNNN.seg, each starting with an 8-byte magic and containing
// framed records:
//
//	frame   length  uint32 LE   (payload bytes)
//	        crc     uint32 LE   (CRC32-C of payload)
//	        payload
//
//	payload op   1 byte
//	        tx   uvarint
//	        id   uvarint        (data records only)
//	        nval uvarint        (data records with rows only)
//	        vals nval × value   (kind byte + payload)
//
// Commit markers consist of just op+tx. Recovery replays records of
// committed transactions across segments in sequence order. An incomplete
// frame at the end of the LAST segment is a torn tail from a crash: it is
// physically truncated away and the store continues. A checksum mismatch,
// an implausible frame length, or an incomplete frame anywhere else is
// mid-log corruption and recovery fails loudly with the segment and byte
// offset — a flipped bit is never silently replayed.
//
// A checkpoint file checkpoint-NNNNNNNN.ckpt holds a full snapshot of
// committed state; its number is the first segment sequence that must be
// replayed on top of it. Checkpoints are written to a temp file, synced
// and renamed, so a crash never exposes a partial checkpoint; after a
// checkpoint lands, older segments and checkpoints are deleted.

const (
	segMagic  = "DDGWSEG2"
	ckptMagic = "DDGWCKP2"

	frameHeader = 8       // uint32 length + uint32 crc
	maxFrame    = 1 << 26 // sanity bound on one record

	legacyWALName = "wal.log"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errCorrupt distinguishes detected log corruption from I/O failures.
var errCorrupt = errors.New("oltp: WAL corrupt")

func segName(seq uint64) string  { return fmt.Sprintf("wal-%08d.seg", seq) }
func ckptName(seq uint64) string { return fmt.Sprintf("checkpoint-%08d.ckpt", seq) }

// parseSeq extracts the sequence number from a segment or checkpoint file
// name, returning ok=false for anything else.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// walWriter appends framed records to the current segment.
type walWriter struct {
	fs   faultfs.FS
	dir  string
	seq  uint64
	f    faultfs.File
	bw   *bufio.Writer
	size int64 // bytes in the current segment, including buffered
	// synced is the durable prefix: bytes known to be on disk after a
	// successful fsync. It only ever lands on a record boundary (syncs
	// happen after commit markers), which is what lets the CDC tailer
	// read up to it without ever seeing a committed-but-not-durable or
	// torn record.
	synced int64

	scratch bytes.Buffer
}

// createSegment starts a fresh segment file with its magic header.
func createSegment(fs faultfs.FS, dir string, seq uint64) (*walWriter, error) {
	f, err := fs.Create(filepath.Join(dir, segName(seq)))
	if err != nil {
		return nil, fmt.Errorf("oltp: creating WAL segment %d: %w", seq, err)
	}
	w := &walWriter{fs: fs, dir: dir, seq: seq, f: f, bw: bufio.NewWriter(f), size: int64(len(segMagic))}
	if _, err := w.bw.WriteString(segMagic); err != nil {
		f.Close()
		return nil, fmt.Errorf("oltp: writing WAL segment header: %w", err)
	}
	return w, nil
}

// openSegmentAppend reopens an existing, already-verified segment for
// appending. size is its verified length (after torn-tail truncation).
func openSegmentAppend(fs faultfs.FS, dir string, seq uint64, size int64) (*walWriter, error) {
	f, err := fs.OpenAppend(filepath.Join(dir, segName(seq)))
	if err != nil {
		return nil, fmt.Errorf("oltp: opening WAL segment %d: %w", seq, err)
	}
	return &walWriter{fs: fs, dir: dir, seq: seq, f: f, bw: bufio.NewWriter(f), size: size, synced: size}, nil
}

// append frames one record into the buffer. The record is not durable
// until sync.
func (w *walWriter) append(rec walRecord) error {
	w.scratch.Reset()
	if err := encodeRecordPayload(&w.scratch, rec); err != nil {
		return err
	}
	payload := w.scratch.Bytes()
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	w.size += int64(frameHeader + len(payload))
	return nil
}

func (w *walWriter) sync() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.synced = w.size
	return nil
}

// close flushes, syncs and closes the segment, reporting the first error
// but always releasing the file handle.
func (w *walWriter) close() error {
	err := w.bw.Flush()
	if serr := w.f.Sync(); err == nil {
		err = serr
	}
	if err == nil {
		w.synced = w.size
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// encodeRecordPayload writes the unframed record encoding (shared between
// format 1, where records are concatenated bare, and format 2, where each
// payload is framed with a length and checksum).
func encodeRecordPayload(buf *bytes.Buffer, rec walRecord) error {
	buf.WriteByte(byte(rec.op))
	writeUvarint(buf, rec.tx)
	if rec.op == opCommit {
		return nil
	}
	writeUvarint(buf, uint64(rec.id))
	if rec.op == opDelete {
		return nil
	}
	writeUvarint(buf, uint64(len(rec.row)))
	for _, v := range rec.row {
		if err := writeValue(buf, v); err != nil {
			return err
		}
	}
	return nil
}

// byteReader is satisfied by bufio.Reader and bytes.Reader.
type byteReader interface {
	io.Reader
	io.ByteReader
}

// decodeRecordPayload parses one framed payload; trailing bytes are an
// error because the frame length said exactly how long the record is.
func decodeRecordPayload(payload []byte) (walRecord, error) {
	br := bytes.NewReader(payload)
	rec, err := readRecord(br)
	if err != nil {
		return walRecord{}, err
	}
	if br.Len() != 0 {
		return walRecord{}, fmt.Errorf("oltp: %d trailing bytes after record", br.Len())
	}
	return rec, nil
}

// replayState carries pending (uncommitted) transactions across segment
// boundaries during recovery, and the highest transaction id seen so the
// reopened store never reuses one.
type replayState struct {
	pending map[uint64][]*writeOp
	maxTx   uint64
}

func newReplayState() *replayState {
	return &replayState{pending: make(map[uint64][]*writeOp)}
}

// applyRecord feeds one recovered record through the commit protocol.
func (s *Store) applyRecord(st *replayState, rec walRecord) {
	if rec.tx > st.maxTx {
		st.maxTx = rec.tx
	}
	if rec.op == opCommit {
		for _, w := range st.pending[rec.tx] {
			s.applyLocked(w)
		}
		delete(st.pending, rec.tx)
		return
	}
	st.pending[rec.tx] = append(st.pending[rec.tx], &writeOp{op: rec.op, id: rec.id, row: rec.row})
}

// replaySegment scans one segment. last marks the final segment of the
// log, whose incomplete tail frame (if any) is a legitimate torn write;
// the returned validSize is the byte offset up to which the segment is
// intact, so the caller can truncate the tear away. Everywhere else an
// incomplete or checksum-failing frame is corruption, reported with its
// offset.
func (s *Store) replaySegment(fs faultfs.FS, dir string, seq uint64, last bool, st *replayState) (validSize int64, err error) {
	name := segName(seq)
	f, err := fs.Open(filepath.Join(dir, name))
	if err != nil {
		return 0, fmt.Errorf("oltp: opening WAL segment for replay: %w", err)
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return 0, fmt.Errorf("oltp: reading WAL segment %s: %w", name, err)
	}

	if len(data) < len(segMagic) {
		// Shorter than the magic: only a torn segment creation can do this,
		// and only to the last segment.
		if last {
			return -1, nil // signal: recreate this segment from scratch
		}
		return 0, fmt.Errorf("%w: segment %s: truncated header (%d bytes)", errCorrupt, name, len(data))
	}
	if string(data[:len(segMagic)]) != segMagic {
		return 0, fmt.Errorf("%w: segment %s: bad magic at offset 0", errCorrupt, name)
	}

	off := len(segMagic)
	for off < len(data) {
		rem := len(data) - off
		if rem < frameHeader {
			if last {
				return int64(off), nil
			}
			return 0, fmt.Errorf("%w: segment %s: truncated frame header at offset %d", errCorrupt, name, off)
		}
		length := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > maxFrame {
			// A torn write leaves a strict prefix of valid bytes, so a
			// fully-present header with an absurd length can only be rot.
			return 0, fmt.Errorf("%w: segment %s: implausible record length %d at offset %d", errCorrupt, name, length, off)
		}
		if rem < frameHeader+int(length) {
			if last {
				return int64(off), nil
			}
			return 0, fmt.Errorf("%w: segment %s: truncated record at offset %d", errCorrupt, name, off)
		}
		payload := data[off+frameHeader : off+frameHeader+int(length)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return 0, fmt.Errorf("%w: segment %s: checksum mismatch at offset %d", errCorrupt, name, off)
		}
		rec, err := decodeRecordPayload(payload)
		if err != nil {
			return 0, fmt.Errorf("%w: segment %s: undecodable record at offset %d: %v", errCorrupt, name, off, err)
		}
		s.applyRecord(st, rec)
		off += frameHeader + int(length)
	}
	return int64(off), nil
}

// walLayout is what a directory listing says about the log.
type walLayout struct {
	segs     []uint64 // sorted segment sequence numbers
	ckpts    []uint64 // sorted checkpoint numbers
	legacy   bool     // wal.log present
	tmpFiles []string // leftover temp files to sweep
}

func scanWalDir(fs faultfs.FS, dir string) (walLayout, error) {
	var lay walLayout
	names, err := fs.ReadDir(dir)
	if err != nil {
		return lay, fmt.Errorf("oltp: listing store dir: %w", err)
	}
	for _, n := range names {
		switch {
		case n == legacyWALName:
			lay.legacy = true
		case strings.HasSuffix(n, ".tmp"):
			lay.tmpFiles = append(lay.tmpFiles, n)
		default:
			if seq, ok := parseSeq(n, "wal-", ".seg"); ok {
				lay.segs = append(lay.segs, seq)
			} else if seq, ok := parseSeq(n, "checkpoint-", ".ckpt"); ok {
				lay.ckpts = append(lay.ckpts, seq)
			}
		}
	}
	sort.Slice(lay.segs, func(a, b int) bool { return lay.segs[a] < lay.segs[b] })
	sort.Slice(lay.ckpts, func(a, b int) bool { return lay.ckpts[a] < lay.ckpts[b] })
	return lay, nil
}

// recover rebuilds committed state from the directory and leaves s.wal
// open on the tail segment, ready to append. It handles all three
// layouts: fresh directory, format-2 segments (+ optional checkpoint),
// and a format-1 wal.log which is migrated to format 2 on first open.
func (s *Store) recover(fs faultfs.FS, dir string) error {
	lay, err := scanWalDir(fs, dir)
	if err != nil {
		return err
	}
	// Sweep temp files from an interrupted checkpoint: the rename never
	// happened, so they are invisible to recovery semantics.
	for _, n := range lay.tmpFiles {
		if err := fs.Remove(filepath.Join(dir, n)); err != nil {
			return fmt.Errorf("oltp: sweeping %s: %w", n, err)
		}
	}

	if lay.legacy {
		if len(lay.ckpts) == 0 && len(lay.segs) == 0 {
			return s.migrateLegacy(fs, dir)
		}
		// A crash between checkpoint rename and wal.log removal during a
		// previous migration: the checkpoint already owns the state.
		if err := fs.Remove(filepath.Join(dir, legacyWALName)); err != nil {
			return fmt.Errorf("oltp: removing migrated %s: %w", legacyWALName, err)
		}
	}

	var base uint64 // first segment that must be replayed
	if len(lay.ckpts) > 0 {
		base = lay.ckpts[len(lay.ckpts)-1]
		if err := s.loadCheckpoint(fs, dir, base); err != nil {
			return err
		}
		// Older checkpoints are superseded.
		for _, c := range lay.ckpts[:len(lay.ckpts)-1] {
			if err := fs.Remove(filepath.Join(dir, ckptName(c))); err != nil {
				return fmt.Errorf("oltp: removing stale checkpoint %d: %w", c, err)
			}
		}
	}

	// Segments below the checkpoint are subsumed by it (a crash between
	// checkpoint rename and segment deletion leaves them behind).
	var replay []uint64
	for _, seq := range lay.segs {
		if seq < base {
			if err := fs.Remove(filepath.Join(dir, segName(seq))); err != nil {
				return fmt.Errorf("oltp: removing stale segment %d: %w", seq, err)
			}
			continue
		}
		replay = append(replay, seq)
	}
	if base > 0 && len(replay) > 0 && replay[0] != base {
		return fmt.Errorf("%w: missing segment %d (checkpoint base)", errCorrupt, base)
	}
	for i, seq := range replay {
		want := replay[0] + uint64(i)
		if seq != want {
			return fmt.Errorf("%w: missing segment %d (found %d)", errCorrupt, want, seq)
		}
	}

	st := newReplayState()
	tailSize := int64(-1)
	for i, seq := range replay {
		last := i == len(replay)-1
		size, err := s.replaySegment(fs, dir, seq, last, st)
		if err != nil {
			return err
		}
		if last {
			tailSize = size
		}
	}
	if st.maxTx > s.nextTx {
		s.nextTx = st.maxTx
	}

	switch {
	case len(replay) == 0:
		seq := base
		if seq == 0 {
			seq = 1
		}
		w, err := createSegment(fs, dir, seq)
		if err != nil {
			return err
		}
		s.wal = w
	case tailSize < 0:
		// Tail segment died before its header landed: recreate it.
		w, err := createSegment(fs, dir, replay[len(replay)-1])
		if err != nil {
			return err
		}
		s.wal = w
	default:
		tail := replay[len(replay)-1]
		// Physically drop any torn tail so the next append starts at a
		// clean frame boundary.
		if err := fs.Truncate(filepath.Join(dir, segName(tail)), tailSize); err != nil {
			return fmt.Errorf("oltp: truncating torn WAL tail: %w", err)
		}
		w, err := openSegmentAppend(fs, dir, tail, tailSize)
		if err != nil {
			return err
		}
		s.wal = w
	}
	return nil
}

// migrateLegacy replays a format-1 wal.log, snapshots the result as a
// format-2 checkpoint, opens segment 1 and removes the old log. A crash
// anywhere in this sequence is safe: before the checkpoint rename the old
// log is still authoritative; after it, recovery deletes the leftover
// wal.log.
func (s *Store) migrateLegacy(fs faultfs.FS, dir string) error {
	if err := s.replayLegacy(fs, filepath.Join(dir, legacyWALName)); err != nil {
		return err
	}
	if _, err := s.writeCheckpoint(fs, dir, 1); err != nil {
		return fmt.Errorf("oltp: migrating legacy WAL: %w", err)
	}
	w, err := createSegment(fs, dir, 1)
	if err != nil {
		return err
	}
	s.wal = w
	if err := fs.Remove(filepath.Join(dir, legacyWALName)); err != nil {
		return fmt.Errorf("oltp: removing legacy WAL: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("oltp: syncing store dir: %w", err)
	}
	return nil
}

// replayLegacy reads the unframed format-1 log. Format 1 has no
// checksums, so — as before this format existed — replay is lenient: the
// first unparsable byte is treated as the torn tail and everything
// committed before it survives.
func (s *Store) replayLegacy(fs faultfs.FS, path string) error {
	f, err := fs.Open(path)
	if err != nil {
		return fmt.Errorf("oltp: opening legacy WAL for replay: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)

	st := newReplayState()
	for {
		rec, err := readRecord(br)
		if err != nil {
			// io.EOF is the clean end; anything else is a torn tail, which
			// format 1 cannot distinguish from corruption.
			break
		}
		s.applyRecord(st, rec)
	}
	if st.maxTx > s.nextTx {
		s.nextTx = st.maxTx
	}
	return nil
}

func readRecord(br byteReader) (walRecord, error) {
	opb, err := br.ReadByte()
	if err != nil {
		return walRecord{}, err
	}
	op := walOp(opb)
	if op < opInsert || op > opMeta {
		return walRecord{}, fmt.Errorf("oltp: bad WAL op %d", opb)
	}
	tx, err := binary.ReadUvarint(br)
	if err != nil {
		return walRecord{}, err
	}
	rec := walRecord{tx: tx, op: op}
	if op == opCommit {
		return rec, nil
	}
	id, err := binary.ReadUvarint(br)
	if err != nil {
		return walRecord{}, err
	}
	rec.id = RowID(id)
	if op == opDelete {
		return rec, nil
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return walRecord{}, err
	}
	const maxRowWidth = 1 << 16
	if n > maxRowWidth {
		return walRecord{}, fmt.Errorf("oltp: WAL row width %d exceeds limit", n)
	}
	rec.row = make(Row, n)
	for i := range rec.row {
		v, err := readValue(br)
		if err != nil {
			return walRecord{}, err
		}
		rec.row[i] = v
	}
	return rec, nil
}

func writeValue(buf *bytes.Buffer, v value.Value) error {
	buf.WriteByte(byte(v.Kind()))
	switch v.Kind() {
	case value.NAKind:
	case value.IntKind:
		writeVarint(buf, v.Int())
	case value.BoolKind:
		b := byte(0)
		if v.Bool() {
			b = 1
		}
		buf.WriteByte(b)
	case value.TimeKind:
		writeVarint(buf, v.Time().UnixNano())
	case value.FloatKind:
		var fb [8]byte
		binary.LittleEndian.PutUint64(fb[:], math.Float64bits(v.Float()))
		buf.Write(fb[:])
	case value.StringKind:
		s := v.Str()
		writeUvarint(buf, uint64(len(s)))
		buf.WriteString(s)
	default:
		return fmt.Errorf("oltp: cannot encode kind %v", v.Kind())
	}
	return nil
}

func readValue(br byteReader) (value.Value, error) {
	kb, err := br.ReadByte()
	if err != nil {
		return value.NA(), err
	}
	switch value.Kind(kb) {
	case value.NAKind:
		return value.NA(), nil
	case value.IntKind:
		i, err := binary.ReadVarint(br)
		if err != nil {
			return value.NA(), err
		}
		return value.Int(i), nil
	case value.BoolKind:
		b, err := br.ReadByte()
		if err != nil {
			return value.NA(), err
		}
		return value.Bool(b != 0), nil
	case value.TimeKind:
		n, err := binary.ReadVarint(br)
		if err != nil {
			return value.NA(), err
		}
		return value.Time(timeUnixNano(n)), nil
	case value.FloatKind:
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return value.NA(), err
		}
		return value.Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case value.StringKind:
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return value.NA(), err
		}
		const maxString = 1 << 24
		if n > maxString {
			return value.NA(), fmt.Errorf("oltp: WAL string length %d exceeds limit", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return value.NA(), err
		}
		return value.Str(string(buf)), nil
	}
	return value.NA(), fmt.Errorf("oltp: bad WAL value kind %d", kb)
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	buf.Write(b[:n])
}

func writeVarint(buf *bytes.Buffer, v int64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutVarint(b[:], v)
	buf.Write(b[:n])
}
