// Package optimize implements the Decision Optimisation feature of the
// DD-DGMS architecture. The paper defines it as "partially the validation
// of the outcomes obtained from prediction and reporting features": since
// the warehouse dimensions are independent, an optimal aggregate should be
// consistent when dimensions are added or removed. ValidateStability
// performs exactly that dimension-ablation check. For the strategic-user
// scenario — "optimising treatment regimen that have the best individual
// outcomes ... within the economic constraints of the current health care
// system" — OptimizeRegimen solves the budgeted treatment-selection
// problem.
package optimize

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/ddgms/ddgms/internal/cube"
	"github.com/ddgms/ddgms/internal/storage"
	"github.com/ddgms/ddgms/internal/value"
)

// StabilityResult records how much a query's aggregates moved when one
// candidate dimension attribute was added to the axes and rolled back out.
type StabilityResult struct {
	Candidate cube.AttrRef
	// MaxRelDelta is the largest relative change across cells; 0 means the
	// aggregate is perfectly consistent under the added dimension.
	MaxRelDelta float64
	// MissingShare is the fraction of the base total carried by facts with
	// no value in the candidate attribute — the mass that silently drops
	// when the attribute joins the axes. Large values explain instability.
	MissingShare float64
	Stable       bool
}

// StabilityReport is the outcome of a dimension-ablation validation.
type StabilityReport struct {
	Base      cube.Query
	Tolerance float64
	Results   []StabilityResult
}

// Stable reports whether every candidate passed.
func (r *StabilityReport) Stable() bool {
	for _, res := range r.Results {
		if !res.Stable {
			return false
		}
	}
	return true
}

// ValidateStability re-runs the base query with each candidate attribute
// added as an extra row axis, rolls the finer result back up, and compares
// cell by cell. Additive measures (count/sum) are required; tolerance is
// the largest acceptable relative deviation once missing-attribute mass is
// accounted for.
func ValidateStability(e *cube.Engine, base cube.Query, candidates []cube.AttrRef, tolerance float64) (*StabilityReport, error) {
	if base.Measure.Agg != storage.CountAgg && base.Measure.Agg != storage.SumAgg {
		return nil, fmt.Errorf("optimize: stability validation needs an additive measure, got %s", base.Measure.Agg)
	}
	if tolerance < 0 {
		return nil, fmt.Errorf("optimize: negative tolerance")
	}
	baseCS, err := e.Execute(base)
	if err != nil {
		return nil, fmt.Errorf("optimize: base query: %w", err)
	}
	baseCells := indexCells(baseCS)
	baseTotal := baseCS.Total()

	report := &StabilityReport{Base: base, Tolerance: tolerance}
	for _, cand := range candidates {
		onAxis := false
		for _, r := range append(append([]cube.AttrRef{}, base.Rows...), base.Cols...) {
			if r == cand {
				onAxis = true
				break
			}
		}
		if onAxis {
			return nil, fmt.Errorf("optimize: candidate %s already on an axis", cand)
		}
		fine := base
		fine.Rows = append([]cube.AttrRef{cand}, base.Rows...)
		// Keep missing-coordinate facts visible so the roll-up is exact; we
		// separately measure how much mass has a missing candidate value.
		fine.IncludeMissing = true
		fineCS, err := e.Execute(fine)
		if err != nil {
			return nil, fmt.Errorf("optimize: candidate %s: %w", cand, err)
		}
		// Roll NA-candidate mass back in: the delta then measures genuine
		// aggregation inconsistency, while MissingShare reports separately
		// how much mass has no value in the candidate attribute.
		rolled, missing := rollUpFirstRowAttr(fineCS, base.IncludeMissing)

		res := StabilityResult{Candidate: cand}
		if baseTotal > 0 {
			res.MissingShare = missing / baseTotal
		}
		for key, baseVal := range baseCells {
			fineVal, ok := rolled[key]
			if !ok {
				if baseVal != 0 {
					res.MaxRelDelta = math.Inf(1)
				}
				continue
			}
			var rel float64
			switch {
			case baseVal == 0 && fineVal == 0:
				rel = 0
			case baseVal == 0:
				rel = math.Inf(1)
			default:
				rel = math.Abs(fineVal-baseVal) / math.Abs(baseVal)
			}
			if rel > res.MaxRelDelta {
				res.MaxRelDelta = rel
			}
		}
		for key := range rolled {
			if _, ok := baseCells[key]; !ok && rolled[key] != 0 {
				res.MaxRelDelta = math.Inf(1)
			}
		}
		res.Stable = res.MaxRelDelta <= tolerance
		report.Results = append(report.Results, res)
	}
	return report, nil
}

// indexCells flattens a cell set into coordinate-label -> numeric value.
func indexCells(cs *cube.CellSet) map[string]float64 {
	out := make(map[string]float64)
	for i := 0; i < cs.Rows(); i++ {
		for j := 0; j < cs.Columns(); j++ {
			if f, ok := cs.Cell(i, j).AsFloat(); ok {
				out[cs.RowLabel(i)+"\x00"+cs.ColLabel(j)] = f
			}
		}
	}
	return out
}

// rollUpFirstRowAttr sums a cell set over the first row attribute. The
// candidate's own NA coordinate is always rolled back in (dropping it is
// what MissingShare diagnoses, not an inconsistency), while residual-tuple
// NA coordinates follow the base query's IncludeMissing so the rolled
// cells are keyed compatibly with the base cells.
func rollUpFirstRowAttr(cs *cube.CellSet, baseIncludeMissing bool) (map[string]float64, float64) {
	rolled := make(map[string]float64)
	var missing float64
	for i := 0; i < cs.Rows(); i++ {
		head := cs.RowHeaders[i][0]
		rest := cs.RowHeaders[i][1:]
		restNA := false
		for _, v := range rest {
			if v.IsNA() {
				restNA = true
				break
			}
		}
		restLabel := tupleLabel(rest)
		for j := 0; j < cs.Columns(); j++ {
			f, ok := cs.Cell(i, j).AsFloat()
			if !ok {
				continue
			}
			if head.IsNA() {
				missing += f
			}
			if !baseIncludeMissing && (restNA || colHasNA(cs, j)) {
				continue
			}
			rolled[restLabel+"\x00"+cs.ColLabel(j)] += f
		}
	}
	return rolled, missing
}

func colHasNA(cs *cube.CellSet, j int) bool {
	for _, v := range cs.ColHeaders[j] {
		if v.IsNA() {
			return true
		}
	}
	return false
}

// tupleLabel mirrors the cube package's header rendering for the residual
// row tuple after the first attribute is removed.
func tupleLabel(vals []value.Value) string {
	if len(vals) == 0 {
		return "(all)"
	}
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = v.String()
	}
	return strings.Join(parts, " / ")
}

// Treatment is one candidate intervention for the regimen optimiser.
type Treatment struct {
	Name string
	// Cost in budget units (must be positive).
	Cost float64
	// Benefit is the expected outcome improvement, typically estimated
	// from warehouse aggregates (e.g. risk reduction × cohort size).
	Benefit float64
	// Requires names a treatment that must also be selected.
	Requires string
}

// Regimen is an optimised treatment selection.
type Regimen struct {
	Selected     []Treatment
	TotalCost    float64
	TotalBenefit float64
}

// OptimizeRegimen selects the subset of treatments maximising total
// benefit within the budget, honouring Requires dependencies. The search
// is exact (branch and bound over subsets) and intended for the dozens of
// candidate interventions a clinical programme weighs, not thousands.
func OptimizeRegimen(treatments []Treatment, budget float64) (*Regimen, error) {
	if budget < 0 {
		return nil, fmt.Errorf("optimize: negative budget")
	}
	if len(treatments) > 24 {
		return nil, fmt.Errorf("optimize: exact search supports <= 24 treatments, got %d", len(treatments))
	}
	byName := make(map[string]int, len(treatments))
	for i, t := range treatments {
		if t.Cost <= 0 {
			return nil, fmt.Errorf("optimize: treatment %q has non-positive cost", t.Name)
		}
		if t.Benefit < 0 {
			return nil, fmt.Errorf("optimize: treatment %q has negative benefit", t.Name)
		}
		if _, dup := byName[t.Name]; dup {
			return nil, fmt.Errorf("optimize: duplicate treatment %q", t.Name)
		}
		byName[t.Name] = i
	}
	for _, t := range treatments {
		if t.Requires == "" {
			continue
		}
		if _, ok := byName[t.Requires]; !ok {
			return nil, fmt.Errorf("optimize: treatment %q requires unknown %q", t.Name, t.Requires)
		}
	}

	n := len(treatments)
	bestMask, bestBenefit, bestCost := 0, -1.0, 0.0
	for mask := 0; mask < 1<<n; mask++ {
		var cost, benefit float64
		valid := true
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			t := treatments[i]
			if t.Requires != "" && mask&(1<<byName[t.Requires]) == 0 {
				valid = false
				break
			}
			cost += t.Cost
			benefit += t.Benefit
		}
		if !valid || cost > budget {
			continue
		}
		if benefit > bestBenefit || (benefit == bestBenefit && cost < bestCost) {
			bestMask, bestBenefit, bestCost = mask, benefit, cost
		}
	}
	if bestBenefit < 0 {
		return &Regimen{}, nil
	}
	reg := &Regimen{TotalCost: bestCost, TotalBenefit: bestBenefit}
	for i := 0; i < n; i++ {
		if bestMask&(1<<i) != 0 {
			reg.Selected = append(reg.Selected, treatments[i])
		}
	}
	sort.Slice(reg.Selected, func(a, b int) bool { return reg.Selected[a].Name < reg.Selected[b].Name })
	return reg, nil
}
