package optimize

import (
	"math"
	"testing"

	"github.com/ddgms/ddgms/internal/cube"
	"github.com/ddgms/ddgms/internal/star"
	"github.com/ddgms/ddgms/internal/storage"
	"github.com/ddgms/ddgms/internal/value"
)

// buildEngine creates a small warehouse where the Exercise attribute is
// complete (stable candidate) and the ECG attribute is missing for some
// facts (unstable candidate when missing facts drop).
func buildEngine(t *testing.T) *cube.Engine {
	t.Helper()
	flat := storage.MustTable(storage.MustSchema(
		storage.Field{Name: "Gender", Kind: value.StringKind},
		storage.Field{Name: "Exercise", Kind: value.StringKind},
		storage.Field{Name: "ECG", Kind: value.StringKind},
		storage.Field{Name: "FBG", Kind: value.FloatKind},
	))
	add := func(g, ex, ecg string, fbg float64) {
		row := []value.Value{value.Str(g), value.Str(ex), value.Str(ecg), value.Float(fbg)}
		if ecg == "" {
			row[2] = value.NA()
		}
		if err := flat.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	add("M", "low", "normal", 7.0)
	add("M", "high", "", 6.0) // missing ECG
	add("F", "low", "normal", 5.5)
	add("F", "high", "abnormal", 8.0)
	add("F", "low", "", 6.5) // missing ECG

	s, err := star.NewBuilder("F").
		Dimension("Personal", []storage.Field{{Name: "Gender", Kind: value.StringKind}}, []string{"Gender"}).
		Dimension("Exercise", []storage.Field{{Name: "Exercise", Kind: value.StringKind}}, []string{"Exercise"}).
		Dimension("ECG", []storage.Field{{Name: "ECG", Kind: value.StringKind}}, []string{"ECG"}).
		Measure(storage.Field{Name: "FBG", Kind: value.FloatKind}, "FBG").
		Build(flat)
	if err != nil {
		t.Fatal(err)
	}
	return cube.NewEngine(s)
}

func TestValidateStabilityStableCandidate(t *testing.T) {
	e := buildEngine(t)
	base := cube.Query{
		Rows:    []cube.AttrRef{{Dim: "Personal", Attr: "Gender"}},
		Measure: cube.MeasureRef{Agg: storage.CountAgg},
	}
	rep, err := ValidateStability(e, base,
		[]cube.AttrRef{{Dim: "Exercise", Attr: "Exercise"}}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stable() {
		t.Errorf("complete attribute should be stable: %+v", rep.Results)
	}
	if rep.Results[0].MissingShare != 0 {
		t.Errorf("missing share = %g", rep.Results[0].MissingShare)
	}
}

func TestValidateStabilityDetectsMissingMass(t *testing.T) {
	e := buildEngine(t)
	base := cube.Query{
		Rows:    []cube.AttrRef{{Dim: "Personal", Attr: "Gender"}},
		Measure: cube.MeasureRef{Agg: storage.CountAgg},
	}
	rep, err := ValidateStability(e, base,
		[]cube.AttrRef{{Dim: "ECG", Attr: "ECG"}}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	// 2 of 5 facts have no ECG: the missing share must say so, and because
	// IncludeMissing is used internally, the rolled aggregate still matches.
	if math.Abs(res.MissingShare-0.4) > 1e-9 {
		t.Errorf("missing share = %g, want 0.4", res.MissingShare)
	}
	if !res.Stable {
		t.Errorf("roll-up with missing kept should still be stable: %+v", res)
	}
}

func TestValidateStabilitySumMeasure(t *testing.T) {
	e := buildEngine(t)
	base := cube.Query{
		Rows:    []cube.AttrRef{{Dim: "Personal", Attr: "Gender"}},
		Measure: cube.MeasureRef{Agg: storage.SumAgg, Column: "FBG"},
	}
	rep, err := ValidateStability(e, base,
		[]cube.AttrRef{{Dim: "Exercise", Attr: "Exercise"}}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stable() {
		t.Errorf("sum should be stable under complete attribute: %+v", rep.Results)
	}
}

func TestValidateStabilityErrors(t *testing.T) {
	e := buildEngine(t)
	base := cube.Query{
		Rows:    []cube.AttrRef{{Dim: "Personal", Attr: "Gender"}},
		Measure: cube.MeasureRef{Agg: storage.AvgAgg, Column: "FBG"},
	}
	if _, err := ValidateStability(e, base, nil, 0.1); err == nil {
		t.Error("non-additive measure must fail")
	}
	base.Measure = cube.MeasureRef{Agg: storage.CountAgg}
	if _, err := ValidateStability(e, base, []cube.AttrRef{{Dim: "Personal", Attr: "Gender"}}, 0.1); err == nil {
		t.Error("candidate already on axis must fail")
	}
	if _, err := ValidateStability(e, base, nil, -1); err == nil {
		t.Error("negative tolerance must fail")
	}
	if _, err := ValidateStability(e, base, []cube.AttrRef{{Dim: "Nope", Attr: "X"}}, 0.1); err == nil {
		t.Error("unknown candidate must fail")
	}
}

func TestOptimizeRegimenKnapsack(t *testing.T) {
	ts := []Treatment{
		{Name: "statins", Cost: 3, Benefit: 10},
		{Name: "exercise-program", Cost: 2, Benefit: 7},
		{Name: "diet-counselling", Cost: 2, Benefit: 6},
		{Name: "retinal-screening", Cost: 4, Benefit: 9},
	}
	reg, err := OptimizeRegimen(ts, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Best subset within budget 7: statins + exercise + diet = cost 7,
	// benefit 23.
	if reg.TotalBenefit != 23 || reg.TotalCost != 7 {
		t.Errorf("regimen = %+v", reg)
	}
	if len(reg.Selected) != 3 {
		t.Errorf("selected %d treatments", len(reg.Selected))
	}
}

func TestOptimizeRegimenDependencies(t *testing.T) {
	ts := []Treatment{
		{Name: "insulin", Cost: 3, Benefit: 20, Requires: "glucose-monitoring"},
		{Name: "glucose-monitoring", Cost: 2, Benefit: 1},
		{Name: "placebo", Cost: 1, Benefit: 5},
	}
	// Budget 4: insulin needs monitoring (total 5) — unaffordable, so the
	// best is monitoring+placebo? benefit 6; or placebo alone 5. Expect 6.
	reg, err := OptimizeRegimen(ts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if reg.TotalBenefit != 6 {
		t.Errorf("benefit = %g, want 6: %+v", reg.TotalBenefit, reg)
	}
	// Budget 6: insulin+monitoring+placebo = cost 6, benefit 26.
	reg, err = OptimizeRegimen(ts, 6)
	if err != nil {
		t.Fatal(err)
	}
	if reg.TotalBenefit != 26 {
		t.Errorf("benefit = %g, want 26", reg.TotalBenefit)
	}
	// Dependencies always honoured.
	for _, sel := range reg.Selected {
		if sel.Requires == "" {
			continue
		}
		found := false
		for _, other := range reg.Selected {
			if other.Name == sel.Requires {
				found = true
			}
		}
		if !found {
			t.Errorf("%s selected without %s", sel.Name, sel.Requires)
		}
	}
}

func TestOptimizeRegimenEdgeCases(t *testing.T) {
	if _, err := OptimizeRegimen([]Treatment{{Name: "a", Cost: 0, Benefit: 1}}, 5); err == nil {
		t.Error("zero cost must fail")
	}
	if _, err := OptimizeRegimen([]Treatment{{Name: "a", Cost: 1, Benefit: -1}}, 5); err == nil {
		t.Error("negative benefit must fail")
	}
	if _, err := OptimizeRegimen([]Treatment{{Name: "a", Cost: 1}, {Name: "a", Cost: 1}}, 5); err == nil {
		t.Error("duplicate name must fail")
	}
	if _, err := OptimizeRegimen([]Treatment{{Name: "a", Cost: 1, Requires: "ghost"}}, 5); err == nil {
		t.Error("unknown dependency must fail")
	}
	if _, err := OptimizeRegimen(nil, -1); err == nil {
		t.Error("negative budget must fail")
	}
	// Empty input: empty regimen.
	reg, err := OptimizeRegimen(nil, 10)
	if err != nil || len(reg.Selected) != 0 {
		t.Errorf("empty = %+v, %v", reg, err)
	}
	// Budget too small for anything.
	reg, err = OptimizeRegimen([]Treatment{{Name: "a", Cost: 5, Benefit: 1}}, 1)
	if err != nil || len(reg.Selected) != 0 {
		t.Errorf("unaffordable = %+v, %v", reg, err)
	}
	big := make([]Treatment, 25)
	for i := range big {
		big[i] = Treatment{Name: string(rune('a' + i)), Cost: 1, Benefit: 1}
	}
	if _, err := OptimizeRegimen(big, 5); err == nil {
		t.Error("too many treatments must fail")
	}
}
