package predict

import (
	"fmt"

	"github.com/ddgms/ddgms/internal/mining"
	"github.com/ddgms/ddgms/internal/value"
)

// Cohort predicts a patient's next phase from the outcomes of the k most
// similar past patients — "past records of other patients in similar
// circumstances". It wraps the mixed-type k-nearest-neighbour machinery
// from the mining package.
type Cohort struct {
	K int // neighbourhood size; 0 means 7

	knn    *mining.KNN
	ds     *mining.Dataset
	fitted bool
}

// NewCohort returns an unfitted predictor.
func NewCohort(k int) *Cohort { return &Cohort{K: k} }

// Fit indexes past patients: features describe each patient's current
// circumstance, outcomes their subsequently observed phase.
func (c *Cohort) Fit(featureNames []string, features [][]value.Value, outcomes []value.Value) error {
	if len(features) != len(outcomes) {
		return fmt.Errorf("predict: %d feature vectors vs %d outcomes", len(features), len(outcomes))
	}
	if c.K == 0 {
		c.K = 7
	}
	ds := &mining.Dataset{Features: featureNames, X: features, Y: outcomes}
	knn := mining.NewKNN(c.K)
	if err := knn.Fit(ds); err != nil {
		return err
	}
	c.knn, c.ds = knn, ds
	c.fitted = true
	return nil
}

// Predict returns the majority next phase among the k most similar past
// patients.
func (c *Cohort) Predict(x []value.Value) (value.Value, error) {
	if !c.fitted {
		return value.NA(), fmt.Errorf("predict: Cohort not fitted")
	}
	return c.knn.Predict(x)
}

// Explain returns the indices and outcomes of the k most similar past
// patients — the evidence a clinician reviews alongside the prediction.
func (c *Cohort) Explain(x []value.Value) ([]int, []value.Value, error) {
	if !c.fitted {
		return nil, nil, fmt.Errorf("predict: Cohort not fitted")
	}
	idx, err := c.knn.Neighbours(x, c.K)
	if err != nil {
		return nil, nil, err
	}
	outcomes := make([]value.Value, len(idx))
	for i, j := range idx {
		outcomes[i] = c.ds.Y[j]
	}
	return idx, outcomes, nil
}
