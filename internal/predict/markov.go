// Package predict implements the Prediction feature of the DD-DGMS
// architecture: "the availability of time-course analysis capabilities
// allows a clinician to use the warehouse to predict the subsequent phase
// of a patient affected by a medical condition based on past records of
// other patients in similar circumstances."
//
// Two predictors are provided: a Markov chain over the qualitative disease
// states produced by temporal abstraction, and a cohort predictor that
// votes over the k most similar past patients.
package predict

import (
	"fmt"
	"math/rand"
	"sort"
)

// Markov is a first-order Markov chain over named disease states, fitted
// from per-patient state sequences with Laplace smoothing.
type Markov struct {
	// Smoothing is the Laplace pseudo-count per transition; 0 means 1.
	Smoothing float64

	states []string
	idx    map[string]int
	counts [][]float64
	fitted bool
}

// StateProb pairs a state with a probability.
type StateProb struct {
	State string
	P     float64
}

// NewMarkov returns an unfitted chain.
func NewMarkov() *Markov { return &Markov{} }

// Fit estimates transition probabilities from state sequences (one per
// patient, each the output of etl.AbstractStates). Sequences shorter than
// two states contribute nothing.
func (m *Markov) Fit(sequences [][]string) error {
	if m.Smoothing == 0 {
		m.Smoothing = 1
	}
	if m.Smoothing < 0 {
		return fmt.Errorf("predict: negative smoothing")
	}
	m.idx = make(map[string]int)
	intern := func(s string) int {
		if i, ok := m.idx[s]; ok {
			return i
		}
		i := len(m.states)
		m.states = append(m.states, s)
		m.idx[s] = i
		return i
	}
	type edge struct{ from, to int }
	edgeCounts := make(map[edge]float64)
	nTransitions := 0
	for _, seq := range sequences {
		for i := 1; i < len(seq); i++ {
			e := edge{from: intern(seq[i-1]), to: intern(seq[i])}
			edgeCounts[e]++
			nTransitions++
		}
		if len(seq) == 1 {
			intern(seq[0])
		}
	}
	if len(m.states) == 0 {
		return fmt.Errorf("predict: no states observed")
	}
	if nTransitions == 0 {
		return fmt.Errorf("predict: no transitions observed")
	}
	n := len(m.states)
	m.counts = make([][]float64, n)
	for i := range m.counts {
		m.counts[i] = make([]float64, n)
		for j := range m.counts[i] {
			m.counts[i][j] = m.Smoothing
		}
	}
	for e, c := range edgeCounts {
		m.counts[e.from][e.to] += c
	}
	m.fitted = true
	return nil
}

// States returns the state vocabulary in first-seen order.
func (m *Markov) States() []string { return append([]string(nil), m.states...) }

// TransitionProb returns P(to | from).
func (m *Markov) TransitionProb(from, to string) (float64, error) {
	if !m.fitted {
		return 0, fmt.Errorf("predict: Markov not fitted")
	}
	fi, ok := m.idx[from]
	if !ok {
		return 0, fmt.Errorf("predict: unknown state %q", from)
	}
	ti, ok := m.idx[to]
	if !ok {
		return 0, fmt.Errorf("predict: unknown state %q", to)
	}
	var total float64
	for _, c := range m.counts[fi] {
		total += c
	}
	return m.counts[fi][ti] / total, nil
}

// Next returns the full next-state distribution from a state, sorted by
// descending probability (ties by state name).
func (m *Markov) Next(from string) ([]StateProb, error) {
	if !m.fitted {
		return nil, fmt.Errorf("predict: Markov not fitted")
	}
	fi, ok := m.idx[from]
	if !ok {
		return nil, fmt.Errorf("predict: unknown state %q", from)
	}
	var total float64
	for _, c := range m.counts[fi] {
		total += c
	}
	out := make([]StateProb, len(m.states))
	for i, s := range m.states {
		out[i] = StateProb{State: s, P: m.counts[fi][i] / total}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].P != out[b].P {
			return out[a].P > out[b].P
		}
		return out[a].State < out[b].State
	})
	return out, nil
}

// PredictNext returns the most probable next state.
func (m *Markov) PredictNext(from string) (string, error) {
	dist, err := m.Next(from)
	if err != nil {
		return "", err
	}
	return dist[0].State, nil
}

// Simulate draws a trajectory of length steps starting from a state,
// deterministically for a given seed. The starting state is included.
func (m *Markov) Simulate(start string, steps int, seed int64) ([]string, error) {
	if !m.fitted {
		return nil, fmt.Errorf("predict: Markov not fitted")
	}
	if _, ok := m.idx[start]; !ok {
		return nil, fmt.Errorf("predict: unknown state %q", start)
	}
	if steps < 0 {
		return nil, fmt.Errorf("predict: negative steps")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, steps+1)
	out = append(out, start)
	cur := m.idx[start]
	for s := 0; s < steps; s++ {
		var total float64
		for _, c := range m.counts[cur] {
			total += c
		}
		r := rng.Float64() * total
		next := len(m.states) - 1
		for i, c := range m.counts[cur] {
			if r < c {
				next = i
				break
			}
			r -= c
		}
		out = append(out, m.states[next])
		cur = next
	}
	return out, nil
}

// Project evolves an initial state distribution through the chain for a
// number of steps (screening cycles), returning the distribution after
// each step — the "simulation" half of the DGMS phase 2 ("learning and
// domain knowledge are used for prediction and simulation"). Strategic
// users read this as projected prevalence under the status quo. The
// initial map may omit states (treated as 0); its values are normalised.
func (m *Markov) Project(initial map[string]float64, steps int) ([][]StateProb, error) {
	if !m.fitted {
		return nil, fmt.Errorf("predict: Markov not fitted")
	}
	if steps < 1 {
		return nil, fmt.Errorf("predict: Project needs steps >= 1")
	}
	n := len(m.states)
	dist := make([]float64, n)
	var total float64
	for s, w := range initial {
		i, ok := m.idx[s]
		if !ok {
			return nil, fmt.Errorf("predict: unknown state %q", s)
		}
		if w < 0 {
			return nil, fmt.Errorf("predict: negative weight for %q", s)
		}
		dist[i] = w
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("predict: initial distribution is empty")
	}
	for i := range dist {
		dist[i] /= total
	}
	// Row-normalised transition matrix.
	p := make([][]float64, n)
	for i := range p {
		p[i] = make([]float64, n)
		var rowTotal float64
		for _, c := range m.counts[i] {
			rowTotal += c
		}
		for j := range p[i] {
			p[i][j] = m.counts[i][j] / rowTotal
		}
	}
	out := make([][]StateProb, steps)
	next := make([]float64, n)
	for s := 0; s < steps; s++ {
		for j := range next {
			next[j] = 0
		}
		for i := range dist {
			for j := range next {
				next[j] += dist[i] * p[i][j]
			}
		}
		dist, next = next, dist
		snap := make([]StateProb, n)
		for i, name := range m.states {
			snap[i] = StateProb{State: name, P: dist[i]}
		}
		sort.Slice(snap, func(a, b int) bool {
			if snap[a].P != snap[b].P {
				return snap[a].P > snap[b].P
			}
			return snap[a].State < snap[b].State
		})
		out[s] = snap
	}
	return out, nil
}

// Stationary iterates the chain from the uniform distribution and returns
// the long-run state occupancy — the strategic-planning view of a disease
// course.
func (m *Markov) Stationary(iterations int) ([]StateProb, error) {
	if !m.fitted {
		return nil, fmt.Errorf("predict: Markov not fitted")
	}
	if iterations < 1 {
		iterations = 100
	}
	n := len(m.states)
	// Row-normalised transition matrix.
	p := make([][]float64, n)
	for i := range p {
		p[i] = make([]float64, n)
		var total float64
		for _, c := range m.counts[i] {
			total += c
		}
		for j := range p[i] {
			p[i][j] = m.counts[i][j] / total
		}
	}
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for it := 0; it < iterations; it++ {
		for j := range next {
			next[j] = 0
		}
		for i := range dist {
			for j := range next {
				next[j] += dist[i] * p[i][j]
			}
		}
		dist, next = next, dist
	}
	out := make([]StateProb, n)
	for i, s := range m.states {
		out[i] = StateProb{State: s, P: dist[i]}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].P != out[b].P {
			return out[a].P > out[b].P
		}
		return out[a].State < out[b].State
	})
	return out, nil
}
