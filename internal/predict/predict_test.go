package predict

import (
	"math"
	"testing"

	"github.com/ddgms/ddgms/internal/value"
)

// trajectories encodes a known disease course: normal mostly stays normal,
// preDiabetic mostly progresses to diabetic, diabetic is absorbing.
func trajectories() [][]string {
	var out [][]string
	for i := 0; i < 20; i++ {
		out = append(out, []string{"normal", "normal", "normal"})
	}
	for i := 0; i < 10; i++ {
		out = append(out, []string{"normal", "preDiabetic", "diabetic", "diabetic"})
	}
	for i := 0; i < 2; i++ {
		out = append(out, []string{"preDiabetic", "normal"})
	}
	return out
}

func fitted(t *testing.T) *Markov {
	t.Helper()
	m := NewMarkov()
	if err := m.Fit(trajectories()); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMarkovPredictNext(t *testing.T) {
	m := fitted(t)
	next, err := m.PredictNext("preDiabetic")
	if err != nil {
		t.Fatal(err)
	}
	if next != "diabetic" {
		t.Errorf("preDiabetic -> %q, want diabetic", next)
	}
	next, err = m.PredictNext("normal")
	if err != nil {
		t.Fatal(err)
	}
	if next != "normal" {
		t.Errorf("normal -> %q, want normal", next)
	}
}

func TestMarkovTransitionProbsNormalised(t *testing.T) {
	m := fitted(t)
	for _, from := range m.States() {
		var total float64
		for _, to := range m.States() {
			p, err := m.TransitionProb(from, to)
			if err != nil {
				t.Fatal(err)
			}
			if p < 0 || p > 1 {
				t.Errorf("P(%s|%s) = %g", to, from, p)
			}
			total += p
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("row %s sums to %g", from, total)
		}
	}
	// Smoothing keeps impossible transitions non-zero but small.
	p, _ := m.TransitionProb("diabetic", "normal")
	if p <= 0 || p > 0.2 {
		t.Errorf("smoothed impossible transition = %g", p)
	}
}

func TestMarkovNextSorted(t *testing.T) {
	m := fitted(t)
	dist, err := m.Next("preDiabetic")
	if err != nil {
		t.Fatal(err)
	}
	if dist[0].State != "diabetic" {
		t.Errorf("top next state = %s", dist[0].State)
	}
	for i := 1; i < len(dist); i++ {
		if dist[i].P > dist[i-1].P {
			t.Error("distribution not sorted descending")
		}
	}
}

func TestMarkovSimulateDeterministic(t *testing.T) {
	m := fitted(t)
	a, err := m.Simulate("normal", 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Simulate("normal", 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 11 {
		t.Fatalf("trajectory length = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("simulation not deterministic for a fixed seed")
		}
	}
	if a[0] != "normal" {
		t.Errorf("start = %q", a[0])
	}
}

func TestMarkovStationaryFavoursAbsorbingState(t *testing.T) {
	m := fitted(t)
	dist, err := m.Stationary(500)
	if err != nil {
		t.Fatal(err)
	}
	// diabetic is nearly absorbing, so long-run mass concentrates there.
	if dist[0].State != "diabetic" {
		t.Errorf("stationary top state = %s (%g)", dist[0].State, dist[0].P)
	}
	var total float64
	for _, sp := range dist {
		total += sp.P
	}
	if math.Abs(total-1) > 1e-6 {
		t.Errorf("stationary sums to %g", total)
	}
}

func TestProjectPrevalence(t *testing.T) {
	m := fitted(t)
	// Start everyone at preDiabetic; mass must flow toward the
	// near-absorbing diabetic state.
	proj, err := m.Project(map[string]float64{"preDiabetic": 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(proj) != 5 {
		t.Fatalf("steps = %d", len(proj))
	}
	at := func(step int, state string) float64 {
		for _, sp := range proj[step] {
			if sp.State == state {
				return sp.P
			}
		}
		t.Fatalf("state %q missing at step %d", state, step)
		return 0
	}
	// Diabetic (near-absorbing) dominates every projected step, and the
	// transient preDiabetic mass decays monotonically.
	for s := 0; s < 5; s++ {
		if proj[s][0].State != "diabetic" {
			t.Errorf("step %d top state = %s", s, proj[s][0].State)
		}
	}
	// The transient preDiabetic state never regains dominance and the
	// projection converges toward the chain's stationary distribution.
	for s := 0; s < 5; s++ {
		if at(s, "preDiabetic") >= at(s, "diabetic") {
			t.Errorf("step %d: preDiabetic %g >= diabetic %g", s, at(s, "preDiabetic"), at(s, "diabetic"))
		}
	}
	stat, err := m.Stationary(500)
	if err != nil {
		t.Fatal(err)
	}
	var statDiabetic float64
	for _, sp := range stat {
		if sp.State == "diabetic" {
			statDiabetic = sp.P
		}
	}
	if d := at(4, "diabetic") - statDiabetic; math.Abs(d) > 0.15 {
		t.Errorf("step 4 diabetic %g far from stationary %g", at(4, "diabetic"), statDiabetic)
	}
	// Each snapshot is a probability distribution.
	for s := range proj {
		var total float64
		for _, sp := range proj[s] {
			total += sp.P
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("step %d sums to %g", s, total)
		}
	}
	// Unnormalised input weights are accepted.
	proj2, err := m.Project(map[string]float64{"normal": 3, "preDiabetic": 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, sp := range proj2[0] {
		total += sp.P
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("unnormalised input: step sums to %g", total)
	}
}

func TestProjectErrors(t *testing.T) {
	m := fitted(t)
	if _, err := m.Project(map[string]float64{"unknown": 1}, 3); err == nil {
		t.Error("unknown state must fail")
	}
	if _, err := m.Project(map[string]float64{"normal": -1}, 3); err == nil {
		t.Error("negative weight must fail")
	}
	if _, err := m.Project(map[string]float64{}, 3); err == nil {
		t.Error("empty distribution must fail")
	}
	if _, err := m.Project(map[string]float64{"normal": 1}, 0); err == nil {
		t.Error("zero steps must fail")
	}
	unfitted := NewMarkov()
	if _, err := unfitted.Project(map[string]float64{"normal": 1}, 1); err == nil {
		t.Error("project before fit must fail")
	}
}

func TestMarkovErrors(t *testing.T) {
	m := NewMarkov()
	if err := m.Fit(nil); err == nil {
		t.Error("no sequences must fail")
	}
	if err := m.Fit([][]string{{"only"}}); err == nil {
		t.Error("no transitions must fail")
	}
	if _, err := m.PredictNext("normal"); err == nil {
		t.Error("predict before fit must fail")
	}
	m = fitted(t)
	if _, err := m.PredictNext("unknown"); err == nil {
		t.Error("unknown state must fail")
	}
	if _, err := m.TransitionProb("normal", "unknown"); err == nil {
		t.Error("unknown target state must fail")
	}
	if _, err := m.Simulate("unknown", 3, 1); err == nil {
		t.Error("simulate from unknown state must fail")
	}
	if _, err := m.Simulate("normal", -1, 1); err == nil {
		t.Error("negative steps must fail")
	}
	neg := NewMarkov()
	neg.Smoothing = -1
	if err := neg.Fit(trajectories()); err == nil {
		t.Error("negative smoothing must fail")
	}
}

func TestCohortPredict(t *testing.T) {
	// Past patients: high FBG + absent reflex progressed; low FBG stayed.
	features := [][]value.Value{
		{value.Float(7.5), value.Str("absent")},
		{value.Float(7.8), value.Str("absent")},
		{value.Float(8.1), value.Str("present")},
		{value.Float(5.0), value.Str("present")},
		{value.Float(5.2), value.Str("present")},
		{value.Float(4.8), value.Str("present")},
	}
	outcomes := []value.Value{
		value.Str("progressed"), value.Str("progressed"), value.Str("progressed"),
		value.Str("stable"), value.Str("stable"), value.Str("stable"),
	}
	c := NewCohort(3)
	if err := c.Fit([]string{"FBG", "Reflex"}, features, outcomes); err != nil {
		t.Fatal(err)
	}
	pred, err := c.Predict([]value.Value{value.Float(7.9), value.Str("absent")})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Str() != "progressed" {
		t.Errorf("prediction = %v", pred)
	}
	idx, outs, err := c.Explain([]value.Value{value.Float(5.1), value.Str("present")})
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 3 || len(outs) != 3 {
		t.Fatalf("explain sizes %d/%d", len(idx), len(outs))
	}
	for _, o := range outs {
		if o.Str() != "stable" {
			t.Errorf("neighbour outcome = %v, want all stable", o)
		}
	}
}

func TestCohortErrors(t *testing.T) {
	c := NewCohort(3)
	if _, err := c.Predict(nil); err == nil {
		t.Error("predict before fit must fail")
	}
	if _, _, err := c.Explain(nil); err == nil {
		t.Error("explain before fit must fail")
	}
	if err := c.Fit([]string{"A"}, [][]value.Value{{value.Float(1)}}, nil); err == nil {
		t.Error("mismatched lengths must fail")
	}
	if err := c.Fit([]string{"A"}, nil, nil); err == nil {
		t.Error("empty cohort must fail")
	}
}
