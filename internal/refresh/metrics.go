package refresh

import "github.com/ddgms/ddgms/internal/obs"

// Refresh metric families. Together with ddgms_cdc_* (feed volume) and
// ddgms_cube_delta_entries_total (cuboids merged vs rescanned) they
// cover the follow path end to end.
var (
	metricBatches = obs.Default().Counter(
		"ddgms_refresh_batches_total",
		"CDC batches applied to the warehouse.")
	metricTxApplied = obs.Default().Counter(
		"ddgms_refresh_transactions_applied_total",
		"Committed transactions folded into the warehouse.")
	metricRowsAppended = obs.Default().Counter(
		"ddgms_refresh_rows_appended_total",
		"Fact rows appended by incremental refresh.")
	metricRowsTombstoned = obs.Default().Counter(
		"ddgms_refresh_rows_tombstoned_total",
		"Fact rows tombstoned by incremental refresh.")
	metricBatchSeconds = obs.Default().Histogram(
		"ddgms_refresh_batch_seconds",
		"End-to-end latency per applied refresh batch.",
		nil)
	metricLag = obs.Default().Gauge(
		"ddgms_refresh_lag_transactions",
		"Committed transactions not yet applied to the warehouse.")
	metricCompactions = obs.Default().Counter(
		"ddgms_refresh_compactions_total",
		"Full rebuilds triggered by tombstone accumulation.")
	metricResyncs = obs.Default().Counter(
		"ddgms_refresh_resyncs_total",
		"Full snapshot resyncs (tail gaps or failed applies).")
)
