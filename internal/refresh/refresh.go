// Package refresh maintains the star-schema warehouse incrementally
// from the OLTP change feed: a Maintainer bootstraps from a consistent
// store snapshot, then consumes committed-transaction batches from a
// cdc.Tailer and folds them into the warehouse without a rebuild.
//
// The unit of recomputation is the patient. Every ETL step in the
// DiScRi pipeline is either row-local (range rules, discretisation,
// derivations) or patient-local (trend abstraction, visit cardinality
// — both partition by the patient column), so re-running the pipeline
// over just the mirror rows of the patients touched by a batch yields
// byte-identical output to a full run restricted to those patients.
// Each batch therefore: (1) updates an in-memory mirror of committed
// OLTP rows, (2) re-derives the affected patients' rows through the
// unchanged etl.Pipeline, (3) tombstones those patients' old facts and
// appends the re-derived ones, and (4) calls cube.Engine.ApplyDelta so
// additive lattice entries are merged/retracted in place instead of the
// caches being dropped.
//
// Patient-scoped recomputation is also what makes at-least-once CDC
// delivery safe: replaying a batch (crash between apply and Ack, or a
// failed cursor save) retires the patients' current facts and appends
// the same re-derived rows again, converging to the same state. After a
// process restart the warehouse is rebuilt from a fresh snapshot and
// the cursor reset to its LSN, so replay never compounds.
//
// When tombstones pass CompactFraction of the fact table the Maintainer
// rebuilds the warehouse from its mirror (not from a new snapshot — the
// cursor does not move), reclaiming the dead rows.
package refresh

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"github.com/ddgms/ddgms/internal/cdc"
	"github.com/ddgms/ddgms/internal/cube"
	"github.com/ddgms/ddgms/internal/etl"
	"github.com/ddgms/ddgms/internal/faultfs"
	"github.com/ddgms/ddgms/internal/govern"
	"github.com/ddgms/ddgms/internal/obs"
	"github.com/ddgms/ddgms/internal/oltp"
	"github.com/ddgms/ddgms/internal/star"
	"github.com/ddgms/ddgms/internal/storage"
	"github.com/ddgms/ddgms/internal/value"
)

// Config parameterises a Maintainer.
type Config struct {
	// Pipeline transforms flat OLTP rows into warehouse-ready rows. Its
	// steps must be patient-local (see the package comment); the stock
	// DiScRi pipeline is.
	Pipeline *etl.Pipeline
	// Builder is the star-schema spec. Build is used at bootstrap and
	// compaction, Append for delta batches.
	Builder *star.Builder
	// PatientCol names the pipeline's partition key; it must exist in
	// both the store schema and the pipeline output. Default "PatientID".
	PatientCol string
	// CursorDir is where the CDC cursor persists; empty keeps the cursor
	// in memory only.
	CursorDir string
	// FS is the filesystem for cursor persistence (tests inject faults).
	FS faultfs.FS
	// EngineOptions configure each cube engine the maintainer builds.
	EngineOptions []cube.Option
	// MaxBatchTx caps transactions per refresh batch (default 256).
	MaxBatchTx int
	// CompactFraction is the tombstone fraction that triggers a rebuild;
	// 0 means the default 0.5, negative disables compaction.
	CompactFraction float64
	// MinCompactRows is the fact-table size below which compaction never
	// triggers (default 256).
	MinCompactRows int
	// Retry paces the follow loop's error backoff through the same
	// injectable clock as ETL retries.
	Retry etl.RetryPolicy
	// PollInterval bounds how long Run waits without a commit signal
	// before polling anyway (default 1s).
	PollInterval time.Duration
	// Tracer, when set, records one trace per applied batch.
	Tracer *obs.Tracer
	// Log, when set, receives one line per resync with the serialised
	// (dictionary-compressed) snapshot size. Nil disables resync logging.
	Log *log.Logger
	// OnRebuild is called whenever the maintainer installs a new engine
	// (bootstrap, resync, compaction) so the serving layer can swap its
	// pointers and re-register measures and member orders. It runs with
	// the maintainer's write lock held: it must not call Freshness or
	// issue queries.
	OnRebuild func(*cube.Engine, *star.Schema, *storage.Table) error
	// Breaker, when set, gates every Refresh: an open breaker (or its
	// health probe failing, typically oltp.Healthy reporting a poisoned
	// WAL) fast-fails the batch without touching the tailer, and batch
	// outcomes feed the breaker's failure counter. The Run loop's retry
	// backoff then paces the fast-fails, so a sick store is probed
	// gently instead of hammered.
	Breaker *govern.Breaker
}

// Maintainer owns the incrementally maintained warehouse. Query code
// must hold RLock while using the engine/schema it obtained, so batch
// application (which mutates both) is excluded.
type Maintainer struct {
	store  *oltp.Store
	cfg    Config
	tailer *cdc.Tailer

	patientIdx  int
	compactFrac float64
	minCompact  int

	mu        sync.RWMutex
	engine    *cube.Engine
	schema    *star.Schema
	flat      *storage.Table
	byPatient map[value.Value]map[oltp.RowID]oltp.Row
	patientOf map[oltp.RowID]value.Value
	facts     map[value.Value][]int // live fact ordinals per patient

	appliedCommits uint64
	appliedEvents  uint64
	appliedLSN     oltp.WALCursor
	lastApplyNano  int64
	compactions    uint64
	resyncs        uint64
	snapshotBytes  int64
}

// Freshness reports how far the warehouse trails the OLTP store. It is
// the payload of the /freshness endpoint.
type Freshness struct {
	AppliedLSN oltp.WALCursor `json:"applied_lsn"`
	DurableLSN oltp.WALCursor `json:"durable_lsn"`
	// LagTx is the number of committed transactions not yet applied.
	LagTx uint64 `json:"lag_tx"`
	// LagSeconds approximates wall-clock staleness: 0 when caught up,
	// otherwise seconds since the warehouse last applied a batch.
	LagSeconds         float64 `json:"lag_seconds"`
	AppliedCommits     uint64  `json:"applied_commits"`
	StoreCommits       uint64  `json:"store_commits"`
	AppliedEvents      uint64  `json:"applied_events"`
	FactRows           int     `json:"fact_rows"`
	LiveRows           int     `json:"live_rows"`
	Compactions        uint64  `json:"compactions"`
	Resyncs            uint64  `json:"resyncs"`
	LastApplyUnixNano  int64   `json:"last_apply_unix_nano"`
	LastCommitUnixNano int64   `json:"last_commit_unix_nano"`
	// SnapshotBytes is the serialised (binary v2, dictionary-compressed)
	// size of the snapshot the warehouse last bootstrapped from.
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// CheckpointBytes is the on-disk size of the store's most recent
	// checkpoint, 0 before the first checkpoint.
	CheckpointBytes int64 `json:"checkpoint_bytes"`
}

// New builds a Maintainer over a durable store and bootstraps the
// warehouse from a snapshot. The store must have a WAL (follow mode is
// meaningless without one).
func New(store *oltp.Store, cfg Config) (*Maintainer, error) {
	if cfg.Pipeline == nil || cfg.Builder == nil {
		return nil, errors.New("refresh: Pipeline and Builder are required")
	}
	if cfg.PatientCol == "" {
		cfg.PatientCol = "PatientID"
	}
	idx, ok := store.Schema().Lookup(cfg.PatientCol)
	if !ok {
		return nil, fmt.Errorf("refresh: store schema has no column %q", cfg.PatientCol)
	}
	m := &Maintainer{store: store, cfg: cfg, patientIdx: idx}
	m.compactFrac = cfg.CompactFraction
	if m.compactFrac == 0 {
		m.compactFrac = 0.5
	}
	m.minCompact = cfg.MinCompactRows
	if m.minCompact <= 0 {
		m.minCompact = 256
	}
	tailer, _, err := cdc.New(store, cdc.Options{Dir: cfg.CursorDir, FS: cfg.FS, MaxBatchTx: cfg.MaxBatchTx})
	if err != nil {
		return nil, err
	}
	m.tailer = tailer
	if err := m.resync(); err != nil {
		m.tailer.Close()
		return nil, err
	}
	return m, nil
}

// RLock takes the maintainer's read lock. Query code holds it while
// executing against the engine/schema so batch application is excluded;
// release with RUnlock.
func (m *Maintainer) RLock() { m.mu.RLock() }

// RUnlock releases RLock.
func (m *Maintainer) RUnlock() { m.mu.RUnlock() }

// Lock takes the write lock for out-of-band warehouse mutations made
// outside the refresh loop (grafting a feedback dimension). Note such
// mutations do not survive a resync or compaction rebuild.
func (m *Maintainer) Lock() { m.mu.Lock() }

// Unlock releases Lock.
func (m *Maintainer) Unlock() { m.mu.Unlock() }

// Engine returns the current cube engine. Hold RLock across obtaining
// and using it.
func (m *Maintainer) Engine() *cube.Engine { return m.engine }

// Schema returns the current star schema. Hold RLock across use.
func (m *Maintainer) Schema() *star.Schema { return m.schema }

// Close releases the commit subscription. The cursor file stays for the
// next process.
func (m *Maintainer) Close() { m.tailer.Close() }

// resync rebuilds the entire warehouse from a fresh store snapshot and
// resets the CDC cursor to the snapshot's LSN. It is the bootstrap path
// and the recovery path for tail gaps and apply failures.
func (m *Maintainer) resync() error {
	// Pin retention at the durable LSN before cutting the snapshot, so a
	// concurrent checkpoint cannot truncate the snapshot's tail position
	// out from under the Reset below. Stores without a WAL fail the
	// snapshot-LSN check right after, so ErrNoWAL is not an error here.
	if _, err := m.tailer.PinAtDurable(); err != nil && !errors.Is(err, oltp.ErrNoWAL) {
		return err
	}
	snap, err := m.store.SnapshotWithLSN()
	if err != nil {
		return err
	}
	if snap.LSN.IsZero() {
		return oltp.ErrNoWAL
	}
	var cw countingWriter
	if err := snap.Table.WriteBinary(&cw); err != nil {
		return err
	}
	if m.cfg.Log != nil {
		m.cfg.Log.Printf("refresh: resync snapshot: %d rows, %d bytes serialised at LSN %v",
			snap.Table.Len(), cw.n, snap.LSN)
	}
	byPatient := make(map[value.Value]map[oltp.RowID]oltp.Row)
	patientOf := make(map[oltp.RowID]value.Value, len(snap.IDs))
	for i, id := range snap.IDs {
		row := snap.Table.Row(i)
		p := row[m.patientIdx]
		rows := byPatient[p]
		if rows == nil {
			rows = make(map[oltp.RowID]oltp.Row)
			byPatient[p] = rows
		}
		rows[id] = row
		patientOf[id] = p
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.byPatient = byPatient
	m.patientOf = patientOf
	if err := m.rebuildLocked(snap.Table); err != nil {
		return err
	}
	m.appliedCommits = snap.Commits
	m.appliedEvents = 0
	m.appliedLSN = snap.LSN
	m.snapshotBytes = cw.n
	m.lastApplyNano = time.Now().UnixNano()
	if err := m.tailer.Reset(snap.LSN); err != nil {
		return err
	}
	return nil
}

// rebuildLocked runs the full pipeline over flat source rows (a
// snapshot table, or nil to materialise the mirror), builds a fresh
// schema and engine, and reindexes facts by patient. Caller holds m.mu.
func (m *Maintainer) rebuildLocked(src *storage.Table) error {
	if src == nil {
		var err error
		src, err = m.mirrorTable(nil)
		if err != nil {
			return err
		}
	}
	flat, err := m.cfg.Pipeline.Run(src)
	if err != nil {
		return err
	}
	schema, err := m.cfg.Builder.Build(flat)
	if err != nil {
		return err
	}
	engine := cube.NewEngine(schema, m.cfg.EngineOptions...)
	facts := make(map[value.Value][]int)
	for j := 0; j < flat.Len(); j++ {
		p := flat.MustValue(j, m.cfg.PatientCol)
		facts[p] = append(facts[p], j)
	}
	m.flat, m.schema, m.engine, m.facts = flat, schema, engine, facts
	if m.cfg.OnRebuild != nil {
		if err := m.cfg.OnRebuild(engine, schema, flat); err != nil {
			return err
		}
	}
	return nil
}

// mirrorTable materialises mirror rows as a flat table in RowID
// order — all patients when affected is nil, else just those patients.
// Only the consumer goroutine touches the mirror maps, so no lock is
// needed (resync swaps them wholesale under the write lock).
func (m *Maintainer) mirrorTable(affected map[value.Value]struct{}) (*storage.Table, error) {
	var ids []oltp.RowID
	if affected == nil {
		ids = make([]oltp.RowID, 0, len(m.patientOf))
		for id := range m.patientOf {
			ids = append(ids, id)
		}
	} else {
		for p := range affected {
			for id := range m.byPatient[p] {
				ids = append(ids, id)
			}
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	tbl, err := storage.NewTable(m.store.Schema())
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		if err := tbl.AppendRow(m.byPatient[m.patientOf[id]][id]); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// Refresh consumes and applies one batch of committed transactions,
// returning how many it applied (0 when caught up). A tail gap or an
// apply failure heals by full resync; only unrecoverable errors (the
// store closed, the resync itself failing) surface. With a breaker
// configured, refreshes fast-fail while the breaker is open or the
// store is unhealthy, and outcomes feed its failure counter.
func (m *Maintainer) Refresh() (int, error) {
	b := m.cfg.Breaker
	if b == nil {
		return m.refresh()
	}
	if err := b.Allow(); err != nil {
		return 0, err
	}
	n, err := m.refresh()
	if err != nil {
		b.RecordFailure()
	} else {
		b.RecordSuccess()
	}
	return n, err
}

func (m *Maintainer) refresh() (int, error) {
	txs, err := m.tailer.Poll()
	if err != nil {
		if errors.Is(err, cdc.ErrGap) {
			return 0, m.forceResync()
		}
		return 0, err
	}
	if len(txs) == 0 {
		// Persist the (possibly advanced) durable-end cursor so restarts
		// of the cdc layer resume close to the tail.
		return 0, m.tailer.Ack()
	}

	start := time.Now()
	var root *obs.Span
	if m.cfg.Tracer != nil {
		tr := m.cfg.Tracer.StartTrace("refresh.batch")
		defer tr.Finish()
		root = tr.Root()
		root.Annotate("transactions", len(txs))
	}
	if err := m.apply(txs, root); err != nil {
		// The mirror may be ahead of the warehouse; resync restores
		// consistency and resets the cursor, so nothing is lost.
		if rerr := m.forceResync(); rerr != nil {
			return 0, errors.Join(err, rerr)
		}
		return 0, nil
	}
	if err := m.tailer.Ack(); err != nil {
		// Cursor not persisted: the batch will be re-polled and re-applied;
		// patient-scoped recompute makes that idempotent.
		return len(txs), err
	}
	metricBatches.Inc()
	metricTxApplied.Add(uint64(len(txs)))
	metricBatchSeconds.ObserveSince(start)
	m.updateLagGauge()
	return len(txs), nil
}

func (m *Maintainer) forceResync() error {
	if err := m.resync(); err != nil {
		return err
	}
	m.resyncs++
	metricResyncs.Inc()
	m.updateLagGauge()
	return nil
}

// apply folds one batch into the mirror and the warehouse.
func (m *Maintainer) apply(txs []oltp.CommittedTx, root *obs.Span) error {
	// 1. Update the mirror and collect the affected patients (old image's
	// patient and, for inserts/updates, the new image's).
	affected := make(map[value.Value]struct{})
	events := 0
	for _, tx := range txs {
		for _, ch := range tx.Changes {
			if ch.Op == oltp.ChangeMeta {
				continue // side-channel records carry no fact rows
			}
			events++
			if old, ok := m.patientOf[ch.ID]; ok {
				affected[old] = struct{}{}
				delete(m.byPatient[old], ch.ID)
				if len(m.byPatient[old]) == 0 {
					delete(m.byPatient, old)
				}
				delete(m.patientOf, ch.ID)
			}
			if ch.Op == oltp.ChangeDelete {
				continue
			}
			p := ch.Row[m.patientIdx]
			affected[p] = struct{}{}
			rows := m.byPatient[p]
			if rows == nil {
				rows = make(map[oltp.RowID]oltp.Row)
				m.byPatient[p] = rows
			}
			rows[ch.ID] = ch.Row
			m.patientOf[ch.ID] = p
		}
	}

	// 2. Re-derive the affected patients through the full pipeline.
	sub, err := m.mirrorTable(affected)
	if err != nil {
		return err
	}
	etlSp := root.Start("refresh.etl")
	etlSp.Annotate("patients", len(affected))
	etlSp.Annotate("rows", sub.Len())
	delta, err := m.cfg.Pipeline.RunTraced(sub, etlSp)
	etlSp.End()
	if err != nil {
		return err
	}

	// 3. Swap the patients' facts under the write lock: tombstone old,
	// append re-derived, fold the delta into the engine's caches.
	sp := root.Start("refresh.apply")
	defer sp.End()
	m.mu.Lock()
	defer m.mu.Unlock()
	fact := m.schema.Fact()
	var retired []int
	for p := range affected {
		retired = append(retired, m.facts[p]...)
	}
	sort.Ints(retired)
	for _, i := range retired {
		if err := fact.Retire(i); err != nil {
			return err
		}
	}
	oldLen := fact.Len()
	if delta.Len() > 0 {
		if err := m.cfg.Builder.Append(m.schema, delta); err != nil {
			return err
		}
	}
	for p := range affected {
		delete(m.facts, p)
	}
	for j := 0; j < delta.Len(); j++ {
		p := delta.MustValue(j, m.cfg.PatientCol)
		m.facts[p] = append(m.facts[p], oldLen+j)
	}
	stats, err := m.engine.ApplyDelta(cube.Delta{Retired: retired, Appended: delta.Len()})
	if err != nil {
		return err
	}
	sp.Annotate("retired", len(retired))
	sp.Annotate("appended", delta.Len())
	sp.Annotate("lattice_merged", stats.EntriesMerged)
	sp.Annotate("lattice_dropped", stats.EntriesDropped)
	metricRowsTombstoned.Add(uint64(len(retired)))
	metricRowsAppended.Add(uint64(delta.Len()))

	m.appliedCommits += uint64(len(txs))
	m.appliedEvents += uint64(events)
	m.appliedLSN = txs[len(txs)-1].End
	m.lastApplyNano = time.Now().UnixNano()

	// 4. Compact when tombstones dominate the fact table.
	if m.compactFrac > 0 && fact.Len() >= m.minCompact &&
		float64(fact.RetiredCount()) > m.compactFrac*float64(fact.Len()) {
		cs := root.Start("refresh.compact")
		err := m.rebuildLocked(nil)
		cs.End()
		if err != nil {
			return err
		}
		m.compactions++
		metricCompactions.Inc()
	}
	return nil
}

// Run follows the store until ctx is done: apply every available batch,
// then wait for a commit signal or the poll interval. Errors back off
// through the config's retry policy and the loop keeps going — a
// follower should survive transient filesystem trouble.
func (m *Maintainer) Run(ctx context.Context) error {
	attempt := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		n, err := m.Refresh()
		if err != nil {
			attempt++
			m.cfg.Retry.Backoff(attempt - 1)
			continue
		}
		attempt = 0
		if n > 0 {
			continue // drain before sleeping
		}
		if err := m.tailer.Wait(ctx, m.cfg.PollInterval); err != nil {
			return err
		}
	}
}

// Cursor exposes the acknowledged CDC position (for tests and status).
func (m *Maintainer) Cursor() oltp.WALCursor { return m.tailer.Cursor() }

// countingWriter discards its input, keeping only the byte count — how
// resync sizes the serialised snapshot without materialising it.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// Freshness reports warehouse staleness relative to the store.
func (m *Maintainer) Freshness() Freshness {
	commits, lastCommit := m.store.CommitStats()
	_, ckptBytes := m.store.CheckpointStats()
	durable, _ := m.store.DurableLSN() // zero cursor if the store closed under us
	m.mu.RLock()
	defer m.mu.RUnlock()
	f := Freshness{
		AppliedLSN:         m.appliedLSN,
		DurableLSN:         durable,
		AppliedCommits:     m.appliedCommits,
		StoreCommits:       commits,
		AppliedEvents:      m.appliedEvents,
		FactRows:           m.schema.Fact().Len(),
		LiveRows:           m.schema.Fact().LiveLen(),
		Compactions:        m.compactions,
		Resyncs:            m.resyncs,
		LastApplyUnixNano:  m.lastApplyNano,
		LastCommitUnixNano: lastCommit,
		SnapshotBytes:      m.snapshotBytes,
		CheckpointBytes:    ckptBytes,
	}
	if commits > m.appliedCommits {
		f.LagTx = commits - m.appliedCommits
		if m.lastApplyNano > 0 {
			f.LagSeconds = time.Since(time.Unix(0, m.lastApplyNano)).Seconds()
		}
	}
	metricLag.Set(float64(f.LagTx))
	return f
}

func (m *Maintainer) updateLagGauge() {
	commits, _ := m.store.CommitStats()
	m.mu.RLock()
	applied := m.appliedCommits
	m.mu.RUnlock()
	if commits > applied {
		metricLag.Set(float64(commits - applied))
	} else {
		metricLag.Set(0)
	}
}
