// Package refresh_test checks the incremental maintainer against the
// gold standard: after any interleaving of commits and refresh batches,
// every query on the incrementally maintained engine must agree
// cell-for-cell with a warehouse rebuilt from scratch off the same
// store. It lives in an external test package so it can drive the real
// DiScRi pipeline from internal/core (core imports refresh, so an
// internal test would cycle).
package refresh_test

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"github.com/ddgms/ddgms/internal/core"
	"github.com/ddgms/ddgms/internal/cube"
	"github.com/ddgms/ddgms/internal/discri"
	"github.com/ddgms/ddgms/internal/experiments"
	"github.com/ddgms/ddgms/internal/govern"
	"github.com/ddgms/ddgms/internal/oltp"
	"github.com/ddgms/ddgms/internal/refresh"
	"github.com/ddgms/ddgms/internal/storage"
	"github.com/ddgms/ddgms/internal/value"
)

// queryBattery is the equivalence check set: the paper-figure queries
// (distinct-patient measures, never latticed) plus additive count, sum
// and avg queries that exercise the maintained lattice entries.
func queryBattery() []cube.Query {
	return []cube.Query{
		experiments.Fig4Query(),
		experiments.Fig5Query(),
		experiments.Fig6Query(),
		{Rows: []cube.AttrRef{core.RefGender}, Measure: cube.MeasureRef{Agg: storage.CountAgg}},
		{Rows: []cube.AttrRef{core.RefAgeBand10}, Cols: []cube.AttrRef{core.RefGender},
			Measure: cube.MeasureRef{Agg: storage.CountAgg}},
		{Rows: []cube.AttrRef{core.RefDiabetes}, Measure: cube.MeasureRef{Agg: storage.AvgAgg, Column: "FBG"}},
		{Rows: []cube.AttrRef{core.RefFBGBand}, Cols: []cube.AttrRef{core.RefGender},
			Measure: cube.MeasureRef{Agg: storage.SumAgg, Column: "FBG"}},
		{Rows: []cube.AttrRef{core.RefFBGTrend}, Measure: cube.MeasureRef{Agg: storage.CountAgg}},
		{Rows: []cube.AttrRef{core.RefVisitNo}, Measure: cube.MeasureRef{Agg: storage.CountAgg}},
	}
}

// cellMap flattens a cell set into label-keyed cells, so comparison is
// insensitive to member interning order (retired members linger in the
// maintained schema's dictionaries but must carry no live cells).
func cellMap(cs *cube.CellSet) map[[2]string]value.Value {
	out := make(map[[2]string]value.Value)
	for i := 0; i < cs.Rows(); i++ {
		for j := 0; j < cs.Columns(); j++ {
			out[[2]string{cs.RowLabel(i), cs.ColLabel(j)}] = cs.Cell(i, j)
		}
	}
	return out
}

// assertCaughtUpEquivalent rebuilds a reference warehouse from scratch
// off the store's current snapshot and compares every battery query.
func assertCaughtUpEquivalent(t *testing.T, label string, m *refresh.Maintainer, store *oltp.Store) {
	t.Helper()
	snap, err := store.Snapshot()
	if err != nil {
		t.Fatalf("%s: Snapshot: %v", label, err)
	}
	flat, err := core.NewDiScRiPipeline().Run(snap)
	if err != nil {
		t.Fatalf("%s: reference pipeline: %v", label, err)
	}
	refSchema, err := core.NewDiScRiBuilder().Build(flat)
	if err != nil {
		t.Fatalf("%s: reference build: %v", label, err)
	}
	ref := cube.NewEngine(refSchema, cube.WithAggregateCache(false))

	m.RLock()
	defer m.RUnlock()
	for qi, q := range queryBattery() {
		got, err := m.Engine().Execute(q)
		if err != nil {
			t.Fatalf("%s: maintained query %d: %v", label, qi, err)
		}
		want, err := ref.Execute(q)
		if err != nil {
			t.Fatalf("%s: reference query %d: %v", label, qi, err)
		}
		gm, wm := cellMap(got), cellMap(want)
		if len(gm) != len(wm) {
			t.Fatalf("%s: query %d (%s): %d cells maintained vs %d rebuilt",
				label, qi, q.Measure, len(gm), len(wm))
		}
		for k, w := range wm {
			g, ok := gm[k]
			if !ok {
				t.Fatalf("%s: query %d (%s): cell %v missing from maintained engine", label, qi, q.Measure, k)
			}
			if g.IsNA() && w.IsNA() {
				continue
			}
			if g.Equal(w) {
				continue
			}
			// Incremental merge/unmerge sums floats in a different order
			// than a cold scan, so sum/avg cells may differ in the last
			// ULP; integer cells (counts, the paper figures) stay exact.
			if g.Kind() == value.FloatKind && w.Kind() == value.FloatKind && w.Float() != 0 {
				if rel := (g.Float() - w.Float()) / w.Float(); rel < 1e-9 && rel > -1e-9 {
					continue
				}
			}
			t.Fatalf("%s: query %d (%s): cell %v = %v maintained, %v rebuilt",
				label, qi, q.Measure, k, g, w)
		}
	}
}

// interleaveEnv is one randomized-run fixture.
type interleaveEnv struct {
	store     *oltp.Store
	m         *refresh.Maintainer
	cursorDir string
	raw       *storage.Table
	next      int // next unstreamed cohort row
	live      []oltp.RowID
	fbgIdx    int
	rng       *rand.Rand
	commits   int
	refreshN  int
}

func newInterleaveEnv(t *testing.T, seed int64, patients int, cfgTweak func(*refresh.Config)) *interleaveEnv {
	t.Helper()
	dcfg := discri.DefaultConfig()
	dcfg.Patients = patients
	dcfg.Seed = seed
	raw, err := discri.Generate(dcfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	dir := t.TempDir()
	// Small segments and checkpoints so the run crosses rotation and
	// checkpoint boundaries; the tailer's retention pin must keep the
	// feed gap-free throughout.
	store, err := oltp.OpenWith(filepath.Join(dir, "store"), raw.Schema(),
		oltp.Options{SegmentBytes: 4 << 10, CheckpointBytes: 16 << 10})
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	t.Cleanup(func() { store.Close() })

	// Seed the store with the first third of the cohort, splitting
	// patients across the snapshot/stream boundary.
	third := raw.Len() / 3
	seedTbl, err := storage.NewTable(raw.Schema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < third; i++ {
		if err := seedTbl.AppendRow(raw.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.LoadTable(seedTbl); err != nil {
		t.Fatalf("LoadTable: %v", err)
	}

	cfg := refresh.Config{
		Pipeline:   core.NewDiScRiPipeline(),
		Builder:    core.NewDiScRiBuilder(),
		CursorDir:  filepath.Join(dir, "cdc"),
		MaxBatchTx: 8,
	}
	if cfgTweak != nil {
		cfgTweak(&cfg)
	}
	m, err := refresh.New(store, cfg)
	if err != nil {
		t.Fatalf("refresh.New: %v", err)
	}
	t.Cleanup(m.Close)

	fbgIdx, ok := raw.Schema().Lookup("FBG")
	if !ok {
		t.Fatal("cohort schema has no FBG column")
	}
	env := &interleaveEnv{
		store: store, m: m, cursorDir: cfg.CursorDir, raw: raw, next: third,
		fbgIdx: fbgIdx, rng: rand.New(rand.NewSource(seed * 7919)),
	}
	// Seeded rows are update/delete candidates too.
	tx := store.Begin()
	tx.Scan(func(id oltp.RowID, _ oltp.Row) bool {
		env.live = append(env.live, id)
		return true
	})
	tx.Rollback()
	return env
}

func (env *interleaveEnv) commit(t *testing.T, mutate func(tx *oltp.Tx) error) {
	t.Helper()
	tx := env.store.Begin()
	if err := mutate(tx); err != nil {
		tx.Rollback()
		t.Fatalf("mutate: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	env.commits++
}

// step performs one random action: insert a chunk of cohort rows,
// update a row's FBG, delete a row, refresh, or query (warming the
// lattice so later deltas must maintain real entries).
func (env *interleaveEnv) step(t *testing.T) {
	t.Helper()
	switch p := env.rng.Float64(); {
	case p < 0.45 && env.next < env.raw.Len():
		n := 1 + env.rng.Intn(8)
		env.commit(t, func(tx *oltp.Tx) error {
			for i := 0; i < n && env.next < env.raw.Len(); i++ {
				id, err := tx.Insert(oltp.Row(env.raw.Row(env.next)))
				if err != nil {
					return err
				}
				env.live = append(env.live, id)
				env.next++
			}
			return nil
		})
	case p < 0.60 && len(env.live) > 0:
		id := env.live[env.rng.Intn(len(env.live))]
		env.commit(t, func(tx *oltp.Tx) error {
			row, ok := tx.Get(id)
			if !ok {
				return nil // deleted by an earlier action
			}
			upd := append(oltp.Row(nil), row...)
			upd[env.fbgIdx] = value.Float(3 + env.rng.Float64()*10)
			return tx.Update(id, upd)
		})
	case p < 0.70 && len(env.live) > 8:
		i := env.rng.Intn(len(env.live))
		id := env.live[i]
		env.live = append(env.live[:i], env.live[i+1:]...)
		env.commit(t, func(tx *oltp.Tx) error { return tx.Delete(id) })
	case p < 0.90:
		if _, err := env.m.Refresh(); err != nil {
			t.Fatalf("Refresh: %v", err)
		}
		env.refreshN++
	default:
		env.m.RLock()
		_, err := env.m.Engine().Execute(cube.Query{
			Rows: []cube.AttrRef{core.RefGender}, Measure: cube.MeasureRef{Agg: storage.CountAgg}})
		env.m.RUnlock()
		if err != nil {
			t.Fatalf("warm query: %v", err)
		}
	}
}

func (env *interleaveEnv) drain(t *testing.T) {
	t.Helper()
	for {
		n, err := env.m.Refresh()
		if err != nil {
			t.Fatalf("drain Refresh: %v", err)
		}
		if n == 0 {
			return
		}
	}
}

// TestRefreshEquivalenceRandomInterleavings is the acceptance property:
// randomized interleavings of inserts, updates, deletes, refresh
// batches and lattice-warming queries, checked for cell-identity
// against a from-scratch rebuild at several drain points.
func TestRefreshEquivalenceRandomInterleavings(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			env := newInterleaveEnv(t, seed, 40, nil)
			for step := 1; step <= 120; step++ {
				env.step(t)
				if step%40 == 0 {
					env.drain(t)
					assertCaughtUpEquivalent(t, fmt.Sprintf("step %d", step), env.m, env.store)
				}
			}
			env.drain(t)
			assertCaughtUpEquivalent(t, "final", env.m, env.store)
			if env.commits == 0 || env.refreshN == 0 {
				t.Fatalf("degenerate interleaving: %d commits, %d refreshes", env.commits, env.refreshN)
			}
		})
	}
}

// TestRefreshRestartRebootstrap closes the maintainer mid-stream (a
// process restart), commits more while it is down, and checks the
// successor bootstraps a consistent warehouse and picks up the stream.
func TestRefreshRestartRebootstrap(t *testing.T) {
	env := newInterleaveEnv(t, 11, 30, nil)
	for i := 0; i < 30; i++ {
		env.step(t)
	}
	env.drain(t)
	cursorBefore := env.m.Cursor()
	if cursorBefore.IsZero() {
		t.Fatal("maintainer has no cursor after draining")
	}
	env.m.Close()

	// Commits while the follower is down.
	for i := 0; i < 10; i++ {
		if env.next >= env.raw.Len() {
			break
		}
		env.commit(t, func(tx *oltp.Tx) error {
			_, err := tx.Insert(oltp.Row(env.raw.Row(env.next)))
			env.next++
			return err
		})
	}

	m2, err := refresh.New(env.store, refresh.Config{
		Pipeline:  core.NewDiScRiPipeline(),
		Builder:   core.NewDiScRiBuilder(),
		CursorDir: env.cursorDir,
	})
	if err != nil {
		t.Fatalf("refresh.New after restart: %v", err)
	}
	defer m2.Close()
	// Bootstrap is from a fresh snapshot, so the successor is already
	// caught up with the downtime commits.
	f := m2.Freshness()
	if f.LagTx != 0 || f.AppliedCommits != f.StoreCommits {
		t.Fatalf("successor not caught up after bootstrap: %+v", f)
	}
	if m2.Cursor().IsZero() || m2.Cursor().Less(cursorBefore) {
		t.Fatalf("successor cursor %s did not advance past predecessor's %s", m2.Cursor(), cursorBefore)
	}
	assertCaughtUpEquivalent(t, "after restart", m2, env.store)

	// And it keeps following: stream a few more and drain.
	for i := 0; i < 5 && env.next < env.raw.Len(); i++ {
		env.commit(t, func(tx *oltp.Tx) error {
			_, err := tx.Insert(oltp.Row(env.raw.Row(env.next)))
			env.next++
			return err
		})
	}
	for {
		n, err := m2.Refresh()
		if err != nil {
			t.Fatalf("Refresh after restart: %v", err)
		}
		if n == 0 {
			break
		}
	}
	assertCaughtUpEquivalent(t, "after restart and stream", m2, env.store)
}

// TestRefreshCompaction drives tombstones past the compaction threshold
// with repeated updates to the same patients and checks the rebuild
// reclaims them without breaking equivalence or moving the cursor
// backwards.
func TestRefreshCompaction(t *testing.T) {
	env := newInterleaveEnv(t, 21, 20, func(cfg *refresh.Config) {
		cfg.CompactFraction = 0.2
		cfg.MinCompactRows = 16
	})
	env.drain(t)
	for round := 0; round < 40; round++ {
		id := env.live[env.rng.Intn(len(env.live))]
		env.commit(t, func(tx *oltp.Tx) error {
			row, ok := tx.Get(id)
			if !ok {
				return nil
			}
			upd := append(oltp.Row(nil), row...)
			upd[env.fbgIdx] = value.Float(3 + env.rng.Float64()*10)
			return tx.Update(id, upd)
		})
		env.drain(t)
	}
	f := env.m.Freshness()
	if f.Compactions == 0 {
		t.Fatalf("no compaction after 40 churn rounds: %+v", f)
	}
	if f.FactRows > 2*f.LiveRows {
		t.Fatalf("tombstones still dominate after compaction: %d fact rows, %d live", f.FactRows, f.LiveRows)
	}
	assertCaughtUpEquivalent(t, "after compaction", env.m, env.store)
}

// TestRefreshGapResync severs the tailer's retention pin so a
// checkpoint truncates unread history, and checks Refresh heals by full
// resync instead of failing or serving stale data.
func TestRefreshGapResync(t *testing.T) {
	env := newInterleaveEnv(t, 31, 25, nil)
	env.drain(t)

	// Clear the pin the tailer holds, then push the store through a
	// checkpoint so the unread tail is swept.
	env.store.RetainWALFrom(0)
	for env.next < env.raw.Len() {
		env.commit(t, func(tx *oltp.Tx) error {
			_, err := tx.Insert(oltp.Row(env.raw.Row(env.next)))
			env.next++
			return err
		})
	}
	if err := env.store.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	if _, err := env.m.Refresh(); err != nil {
		t.Fatalf("Refresh across gap: %v", err)
	}
	f := env.m.Freshness()
	if f.Resyncs == 0 {
		t.Fatal("gap did not trigger a resync")
	}
	env.drain(t)
	assertCaughtUpEquivalent(t, "after gap resync", env.m, env.store)
}

// TestRefreshFreshnessBytes checks the snapshot/checkpoint size fields
// of the /freshness payload: a bootstrap populates snapshot_bytes, and a
// store checkpoint populates checkpoint_bytes.
func TestRefreshFreshnessBytes(t *testing.T) {
	env := newInterleaveEnv(t, 47, 20, nil)
	env.drain(t)
	f := env.m.Freshness()
	if f.SnapshotBytes <= 0 {
		t.Fatalf("snapshot_bytes = %d after bootstrap, want > 0", f.SnapshotBytes)
	}
	if f.CheckpointBytes != 0 {
		t.Fatalf("checkpoint_bytes = %d before any checkpoint, want 0", f.CheckpointBytes)
	}
	if err := env.store.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	f = env.m.Freshness()
	if f.CheckpointBytes <= 0 {
		t.Fatalf("checkpoint_bytes = %d after checkpoint, want > 0", f.CheckpointBytes)
	}
}

// TestRefreshFreshnessLag checks the /freshness payload arithmetic:
// unapplied commits surface as transaction lag and draining clears it.
func TestRefreshFreshnessLag(t *testing.T) {
	env := newInterleaveEnv(t, 41, 20, nil)
	env.drain(t)
	f := env.m.Freshness()
	if f.LagTx != 0 || f.LagSeconds != 0 {
		t.Fatalf("lag after drain: %+v", f)
	}
	for i := 0; i < 4 && env.next < env.raw.Len(); i++ {
		env.commit(t, func(tx *oltp.Tx) error {
			_, err := tx.Insert(oltp.Row(env.raw.Row(env.next)))
			env.next++
			return err
		})
	}
	f = env.m.Freshness()
	if f.LagTx != 4 {
		t.Fatalf("lag_tx = %d after 4 unapplied commits, want 4", f.LagTx)
	}
	if f.StoreCommits != f.AppliedCommits+4 {
		t.Fatalf("commit accounting off: %+v", f)
	}
	env.drain(t)
	f = env.m.Freshness()
	if f.LagTx != 0 || f.AppliedCommits != f.StoreCommits {
		t.Fatalf("lag not cleared by drain: %+v", f)
	}
	if f.AppliedLSN != f.DurableLSN {
		t.Fatalf("applied LSN %s trails durable %s after drain", f.AppliedLSN, f.DurableLSN)
	}
}

// TestRefreshBreakerGates: a breaker watching store health fast-fails
// refresh batches while the dependency is sick, without consuming the
// CDC cursor — the deferred batch applies intact once health returns.
func TestRefreshBreakerGates(t *testing.T) {
	var mu sync.Mutex
	var healthErr error
	b := govern.NewBreaker(govern.BreakerConfig{
		Name: "refresh-test",
		Health: func() error {
			mu.Lock()
			defer mu.Unlock()
			return healthErr
		},
	})
	env := newInterleaveEnv(t, 11, 30, func(cfg *refresh.Config) { cfg.Breaker = b })

	if _, err := env.m.Refresh(); err != nil {
		t.Fatalf("healthy Refresh: %v", err)
	}
	env.commit(t, func(tx *oltp.Tx) error {
		_, err := tx.Insert(oltp.Row(env.raw.Row(env.next)))
		env.next++
		return err
	})
	mu.Lock()
	healthErr = fmt.Errorf("wal poisoned")
	mu.Unlock()
	if _, err := env.m.Refresh(); !errors.Is(err, govern.ErrBreakerOpen) {
		t.Fatalf("sick Refresh error = %v, want ErrBreakerOpen", err)
	}
	lag := env.m.Freshness().LagTx
	if lag != 1 {
		t.Fatalf("fast-failed refresh moved the cursor: lag_tx = %d, want 1", lag)
	}
	mu.Lock()
	healthErr = nil
	mu.Unlock()
	n, err := env.m.Refresh()
	if err != nil || n == 0 {
		t.Fatalf("recovered Refresh = (%d, %v), want the deferred batch applied", n, err)
	}
	if f := env.m.Freshness(); f.LagTx != 0 {
		t.Fatalf("lag_tx = %d after recovery, want 0", f.LagTx)
	}
}
