package repl

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"

	"github.com/ddgms/ddgms/internal/faultfs"
	"github.com/ddgms/ddgms/internal/oltp"
)

// The follower's replication cursor is the primary's WAL position it
// has durably applied up to. It lives in its own file — it is a cursor
// into the *primary's* log, distinct from the local cdc cursor into the
// follower's own log — with the same magic+uvarint+CRC32-C layout and
// tmp+sync+rename+dirsync save discipline as the cdc cursor, so a crash
// mid-save never corrupts it.
//
// Version 2 ("DDGRCUR2") stores the replication epoch alongside the
// cursor in the SAME record: a cursor is only meaningful within the
// epoch whose timeline it indexes, so persisting them separately would
// open a crash window where a new epoch pairs with a stale-timeline
// cursor. V1 files (pre-fencing) are treated as absent — the follower
// takes a one-time snapshot bootstrap rather than trusting a cursor of
// unknown epoch.
const (
	cursorMagic   = "DDGRCUR2"
	cursorMagicV1 = "DDGRCUR1"
	cursorFile    = "repl.cursor"
)

// writeDurable writes data to dir/name with tmp+sync+rename+dirsync.
func writeDurable(fs faultfs.FS, dir, name string, data []byte) error {
	final := filepath.Join(dir, name)
	tmpPath := final + ".tmp"
	f, err := fs.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("repl: creating %s: %w", name, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("repl: writing %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("repl: syncing %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("repl: closing %s: %w", name, err)
	}
	if err := fs.Rename(tmpPath, final); err != nil {
		return fmt.Errorf("repl: publishing %s: %w", name, err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("repl: syncing dir for %s: %w", name, err)
	}
	return nil
}

// saveCursor persists (epoch, cursor) durably under dir as one record.
func saveCursor(fs faultfs.FS, dir string, epoch uint64, c oltp.WALCursor) error {
	var buf bytes.Buffer
	buf.WriteString(cursorMagic)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], epoch)
	buf.Write(tmp[:n])
	n = binary.PutUvarint(tmp[:], c.Seq)
	buf.Write(tmp[:n])
	n = binary.PutUvarint(tmp[:], uint64(c.Off))
	buf.Write(tmp[:n])
	sum := crc32.Checksum(buf.Bytes()[len(cursorMagic):], castagnoli)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], sum)
	buf.Write(crc[:])
	if err := writeDurable(fs, dir, cursorFile, buf.Bytes()); err != nil {
		return err
	}
	metricCursorSaves.Inc()
	return nil
}

// loadCursor reads the persisted (epoch, cursor); ok=false when none
// exists, the file is torn (an interrupted first save), or it is a v1
// record with no epoch — the follower then bootstraps from a snapshot
// instead of resuming from garbage.
func loadCursor(fs faultfs.FS, dir string) (epoch uint64, cur oltp.WALCursor, ok bool, err error) {
	f, err := fs.Open(filepath.Join(dir, cursorFile))
	if err != nil {
		return 0, oltp.WALCursor{}, false, nil
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return 0, oltp.WALCursor{}, false, fmt.Errorf("repl: reading cursor: %w", err)
	}
	if len(data) >= len(cursorMagicV1) && string(data[:len(cursorMagicV1)]) == cursorMagicV1 {
		return 0, oltp.WALCursor{}, false, nil // pre-epoch record: bootstrap
	}
	if len(data) < len(cursorMagic)+4 || string(data[:len(cursorMagic)]) != cursorMagic {
		return 0, oltp.WALCursor{}, false, nil // torn first save: bootstrap
	}
	body := data[len(cursorMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != want {
		return 0, oltp.WALCursor{}, false, fmt.Errorf("repl: cursor checksum mismatch")
	}
	br := bytes.NewReader(body)
	epoch, err = binary.ReadUvarint(br)
	if err != nil {
		return 0, oltp.WALCursor{}, false, fmt.Errorf("repl: bad cursor payload")
	}
	seq, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, oltp.WALCursor{}, false, fmt.Errorf("repl: bad cursor payload")
	}
	off, err := binary.ReadUvarint(br)
	if err != nil || br.Len() != 0 {
		return 0, oltp.WALCursor{}, false, fmt.Errorf("repl: bad cursor payload")
	}
	return epoch, oltp.WALCursor{Seq: seq, Off: int64(off)}, true, nil
}
