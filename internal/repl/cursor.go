package repl

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"

	"github.com/ddgms/ddgms/internal/faultfs"
	"github.com/ddgms/ddgms/internal/oltp"
)

// The follower's replication cursor is the primary's WAL position it
// has durably applied up to. It lives in its own file — it is a cursor
// into the *primary's* log, distinct from the local cdc cursor into the
// follower's own log — with the same magic+uvarint+CRC32-C layout and
// tmp+sync+rename+dirsync save discipline as the cdc cursor, so a crash
// mid-save never corrupts it.
const (
	cursorMagic = "DDGRCUR1"
	cursorFile  = "repl.cursor"
)

// saveCursor persists c durably under dir.
func saveCursor(fs faultfs.FS, dir string, c oltp.WALCursor) error {
	var buf bytes.Buffer
	buf.WriteString(cursorMagic)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], c.Seq)
	buf.Write(tmp[:n])
	n = binary.PutUvarint(tmp[:], uint64(c.Off))
	buf.Write(tmp[:n])
	sum := crc32.Checksum(buf.Bytes()[len(cursorMagic):], castagnoli)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], sum)
	buf.Write(crc[:])

	final := filepath.Join(dir, cursorFile)
	tmpPath := final + ".tmp"
	f, err := fs.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("repl: creating cursor file: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("repl: writing cursor: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("repl: syncing cursor: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("repl: closing cursor: %w", err)
	}
	if err := fs.Rename(tmpPath, final); err != nil {
		return fmt.Errorf("repl: publishing cursor: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("repl: syncing cursor dir: %w", err)
	}
	metricCursorSaves.Inc()
	return nil
}

// loadCursor reads the persisted cursor; ok=false when none exists or
// the file is torn (an interrupted first save) — the follower then
// bootstraps from a snapshot instead of resuming from garbage.
func loadCursor(fs faultfs.FS, dir string) (oltp.WALCursor, bool, error) {
	f, err := fs.Open(filepath.Join(dir, cursorFile))
	if err != nil {
		return oltp.WALCursor{}, false, nil
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return oltp.WALCursor{}, false, fmt.Errorf("repl: reading cursor: %w", err)
	}
	if len(data) < len(cursorMagic)+4 || string(data[:len(cursorMagic)]) != cursorMagic {
		return oltp.WALCursor{}, false, nil // torn first save: bootstrap
	}
	body := data[len(cursorMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != want {
		return oltp.WALCursor{}, false, fmt.Errorf("repl: cursor checksum mismatch")
	}
	br := bytes.NewReader(body)
	seq, err := binary.ReadUvarint(br)
	if err != nil {
		return oltp.WALCursor{}, false, fmt.Errorf("repl: bad cursor payload")
	}
	off, err := binary.ReadUvarint(br)
	if err != nil || br.Len() != 0 {
		return oltp.WALCursor{}, false, fmt.Errorf("repl: bad cursor payload")
	}
	return oltp.WALCursor{Seq: seq, Off: int64(off)}, true, nil
}
