package repl

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"

	"github.com/ddgms/ddgms/internal/faultfs"
)

// The node's replication epoch (fencing term) is persisted on the
// primary side in its own file: a primary must come back after a crash
// still knowing which epoch it led, or a fenced ex-primary could
// restart believing itself current. Followers persist their epoch
// inside the cursor record instead (see cursor.go); a node that has
// been both reads the max of the two.
const (
	epochMagic = "DDGREPO1"
	epochFile  = "repl.epoch"
)

// saveEpoch persists the epoch durably under dir.
func saveEpoch(fs faultfs.FS, dir string, epoch uint64) error {
	var buf bytes.Buffer
	buf.WriteString(epochMagic)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], epoch)
	buf.Write(tmp[:n])
	sum := crc32.Checksum(buf.Bytes()[len(epochMagic):], castagnoli)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], sum)
	buf.Write(crc[:])
	return writeDurable(fs, dir, epochFile, buf.Bytes())
}

// loadEpoch reads the persisted epoch; ok=false when none exists or the
// first save was torn.
func loadEpoch(fs faultfs.FS, dir string) (epoch uint64, ok bool, err error) {
	f, err := fs.Open(filepath.Join(dir, epochFile))
	if err != nil {
		return 0, false, nil
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return 0, false, fmt.Errorf("repl: reading epoch: %w", err)
	}
	if len(data) < len(epochMagic)+4 || string(data[:len(epochMagic)]) != epochMagic {
		return 0, false, nil // torn first save
	}
	body := data[len(epochMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != want {
		return 0, false, fmt.Errorf("repl: epoch checksum mismatch")
	}
	br := bytes.NewReader(body)
	epoch, err = binary.ReadUvarint(br)
	if err != nil || br.Len() != 0 {
		return 0, false, fmt.Errorf("repl: bad epoch payload")
	}
	return epoch, true, nil
}

// knownEpoch is the highest epoch durably recorded under dir, across
// both the follower cursor record and the primary epoch file. A node
// that was promoted and later demoted has both; fencing correctness
// needs the max.
func knownEpoch(fs faultfs.FS, dir string) (uint64, error) {
	var max uint64
	if e, ok, err := loadEpoch(fs, dir); err != nil {
		return 0, err
	} else if ok && e > max {
		max = e
	}
	if e, _, ok, err := loadCursor(fs, dir); err != nil {
		return 0, err
	} else if ok && e > max {
		max = e
	}
	return max, nil
}
