package repl

import (
	"testing"

	"github.com/ddgms/ddgms/internal/faultfs"
)

// The epoch file is the fencing story's durable anchor: a primary that
// crashes mid-save and restarts must still know the highest epoch it
// ever led — loading a lower one would let a fenced ex-primary restart
// believing itself current. These sweeps crash saveEpoch at every
// injection point (including torn writes) and assert the effective
// epoch under dir is always old-or-new, never garbage, never lower.

func TestEpochSaveCrashSweepNeverRegresses(t *testing.T) {
	// Count the injection-point space of one save.
	counter := faultfs.NewFault(faultfs.OS{})
	if err := saveEpoch(counter, t.TempDir(), 6); err != nil {
		t.Fatalf("counting save: %v", err)
	}
	total := counter.Ops()
	if total < 5 {
		t.Fatalf("save spans %d ops, expected at least create/write/sync/close/rename", total)
	}

	for n := 1; n <= total; n++ {
		for _, frac := range []float64{0, 0.5, 1} {
			dir := t.TempDir()
			if err := saveEpoch(faultfs.OS{}, dir, 5); err != nil {
				t.Fatalf("seeding epoch: %v", err)
			}
			fault := faultfs.NewFault(faultfs.OS{}).CrashAt(n, frac)
			if err := saveEpoch(fault, dir, 6); err == nil {
				t.Fatalf("crash at op %d frac %.1f: save unexpectedly succeeded", n, frac)
			}
			e, ok, err := loadEpoch(faultfs.OS{}, dir)
			if err != nil {
				t.Fatalf("crash at op %d frac %.1f: reload errored: %v", n, frac, err)
			}
			if !ok {
				t.Fatalf("crash at op %d frac %.1f: epoch file vanished", n, frac)
			}
			if e != 5 && e != 6 {
				t.Fatalf("crash at op %d frac %.1f: loaded epoch %d, want 5 or 6", n, frac, e)
			}
			// knownEpoch is what fencing actually consults.
			if ke, err := knownEpoch(faultfs.OS{}, dir); err != nil || ke < 5 {
				t.Fatalf("crash at op %d frac %.1f: knownEpoch = %d, %v; regressed below 5", n, frac, ke, err)
			}
		}
	}
}

func TestEpochFirstSaveCrashSweepTornReadsAsAbsent(t *testing.T) {
	counter := faultfs.NewFault(faultfs.OS{})
	if err := saveEpoch(counter, t.TempDir(), 3); err != nil {
		t.Fatalf("counting save: %v", err)
	}
	total := counter.Ops()

	for n := 1; n <= total; n++ {
		for _, frac := range []float64{0, 0.5} {
			dir := t.TempDir()
			fault := faultfs.NewFault(faultfs.OS{}).CrashAt(n, frac)
			if err := saveEpoch(fault, dir, 3); err == nil {
				t.Fatalf("first-save crash at op %d frac %.1f: save unexpectedly succeeded", n, frac)
			}
			// A torn very first save must read as "no epoch recorded" so a
			// fresh node still boots — never as an error, never as garbage.
			e, ok, err := loadEpoch(faultfs.OS{}, dir)
			if err != nil {
				t.Fatalf("first-save crash at op %d frac %.1f: reload errored: %v", n, frac, err)
			}
			if ok && e != 3 {
				t.Fatalf("first-save crash at op %d frac %.1f: loaded garbage epoch %d", n, frac, e)
			}
			if ke, err := knownEpoch(faultfs.OS{}, dir); err != nil || (ke != 0 && ke != 3) {
				t.Fatalf("first-save crash at op %d frac %.1f: knownEpoch = %d, %v", n, frac, ke, err)
			}
		}
	}
}
