package repl

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/ddgms/ddgms/internal/faultfs"
	"github.com/ddgms/ddgms/internal/oltp"
)

// FollowerConfig configures the receiving side of replication.
type FollowerConfig struct {
	// Store is the follower's own local store; it is switched into
	// replica mode (local writes refused) for the follower's lifetime.
	Store *oltp.Store
	// Dir holds the durable replication cursor.
	Dir string
	// FS is the filesystem for cursor persistence; nil means the real
	// one.
	FS faultfs.FS
	// PrimaryAddr is the primary's replication listener address.
	PrimaryAddr string
	// ID names this follower to the primary; it keys the primary's
	// retention pin, so it must be stable across restarts. Required.
	ID string
	// Dial opens the connection; tests wrap it in a faultnet fault.
	// Default net.DialTimeout("tcp", ...).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// DialTimeout bounds each connection attempt. Default 2s.
	DialTimeout time.Duration
	// HeartbeatTimeout tears the session down when no frame arrives
	// within it; must exceed the primary's HeartbeatEvery. Default 3s.
	HeartbeatTimeout time.Duration
	// WriteTimeout bounds hello/ack writes. Default 5s.
	WriteTimeout time.Duration
	// BackoffMin/BackoffMax bound the reconnect backoff (exponential,
	// jittered). Defaults 50ms / 2s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Log, when set, receives session lifecycle lines.
	Log *log.Logger
}

// Follower maintains the replication session: it dials, hands the
// primary its durable cursor, verifies and applies every frame, and on
// any fault reconnects with capped exponential backoff plus jitter.
type Follower struct {
	cfg FollowerConfig
	fs  faultfs.FS

	mu         sync.Mutex
	addr       string // current primary address; Rehome swaps it
	epoch      uint64 // highest epoch durably adopted
	cur        oltp.WALCursor
	state      string
	connected  bool
	conn       net.Conn
	resyncs    uint64
	reconnects uint64
	lastFrame  time.Time

	ready     chan struct{}
	readyOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// errProtocol wraps stream-rule violations (LSN regression, frame out
// of sequence); like every fault it forces a reconnect.
var errProtocol = errors.New("repl: protocol violation")

// errStaleEpoch marks a frame from an epoch below ours: the sender is a
// fenced-or-soon-to-be-fenced ex-primary and nothing it ships may be
// applied.
var errStaleEpoch = errors.New("repl: frame from stale epoch")

// maxApplyBatch caps how many buffered tx frames coalesce into one
// ApplyReplicated call (and so one local fsync) during catch-up.
const maxApplyBatch = 64

// StartFollower loads the durable cursor, puts the store in replica
// mode and starts the session loop.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Store == nil || cfg.PrimaryAddr == "" || cfg.ID == "" {
		return nil, errors.New("repl: follower needs a store, a primary address and an id")
	}
	if len(cfg.ID) > maxFollowerID {
		return nil, fmt.Errorf("repl: follower id longer than %d bytes", maxFollowerID)
	}
	if cfg.FS == nil {
		cfg.FS = faultfs.OS{}
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 3 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 5 * time.Second
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 50 * time.Millisecond
	}
	if cfg.BackoffMax < cfg.BackoffMin {
		cfg.BackoffMax = 2 * time.Second
	}
	f := &Follower{
		cfg:   cfg,
		fs:    cfg.FS,
		addr:  cfg.PrimaryAddr,
		state: "connecting",
		ready: make(chan struct{}),
		done:  make(chan struct{}),
	}
	if cfg.Dir != "" {
		if err := cfg.FS.MkdirAll(cfg.Dir); err != nil {
			return nil, fmt.Errorf("repl: creating cursor dir: %w", err)
		}
		epoch, cur, ok, err := loadCursor(cfg.FS, cfg.Dir)
		if err != nil {
			return nil, err
		}
		if ok {
			f.epoch = epoch
			f.cur = cur
		}
		// A node that once led (or fenced) knows an epoch beyond its
		// cursor's; the cursor indexes an older timeline then and must
		// not be resumed from.
		known, err := knownEpoch(cfg.FS, cfg.Dir)
		if err != nil {
			return nil, err
		}
		if known > f.epoch {
			f.epoch = known
			f.cur = oltp.WALCursor{}
		}
	}
	metricEpoch.Set(float64(f.epoch))
	cfg.Store.SetReplica(true)
	f.wg.Add(1)
	go f.run()
	return f, nil
}

// Ready is closed once the follower has first caught up with the
// primary (snapshot applied, or a heartbeat observed): its store then
// reflects the primary's state as of some recent LSN and is fit to
// bootstrap a warehouse from.
func (f *Follower) Ready() <-chan struct{} { return f.ready }

// Cursor is the primary-log position durably applied so far.
func (f *Follower) Cursor() oltp.WALCursor {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cur
}

// Epoch is the highest replication epoch this follower has durably
// adopted; Promote leads the next one.
func (f *Follower) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// primaryAddr is the address the reconnect loop currently dials.
func (f *Follower) primaryAddr() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.addr
}

// Rehome points the follower at a different primary — after a
// promotion, survivors re-home to the new leader. The live session (if
// any) is torn down and the reconnect loop redials the new address;
// epoch rules take care of the rest (the new primary forces a snapshot
// bootstrap if our cursor indexes a superseded timeline).
func (f *Follower) Rehome(addr string) {
	f.mu.Lock()
	if f.addr == addr {
		f.mu.Unlock()
		return
	}
	f.addr = addr
	conn := f.conn
	f.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// Close stops the session loop and leaves the store in replica mode
// (the process is shutting down; promotion is an operator decision).
func (f *Follower) Close() error {
	f.mu.Lock()
	select {
	case <-f.done:
		f.mu.Unlock()
		return nil
	default:
	}
	close(f.done)
	if f.conn != nil {
		f.conn.Close()
	}
	f.mu.Unlock()
	f.wg.Wait()
	return nil
}

// Status reports the follower's view for the /replication endpoint.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.cur
	st := Status{
		Role:       "follower",
		Epoch:      f.epoch,
		Primary:    f.addr,
		ID:         f.cfg.ID,
		State:      f.state,
		Connected:  f.connected,
		Cursor:     &cur,
		Resyncs:    f.resyncs,
		Reconnects: f.reconnects,
	}
	if !f.lastFrame.IsZero() {
		st.SecondsSinceFrame = time.Since(f.lastFrame).Seconds()
	}
	return st
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Log != nil {
		f.cfg.Log.Printf(format, args...)
	}
}

func (f *Follower) setState(s string) {
	f.mu.Lock()
	f.state = s
	f.mu.Unlock()
}

func (f *Follower) markReady() {
	f.readyOnce.Do(func() { close(f.ready) })
}

// run is the reconnect loop: each session runs until a fault, then the
// backoff doubles (reset after any productive session) and the loop
// redials. Every fault path converges here — that is the whole
// fault-tolerance story.
func (f *Follower) run() {
	defer f.wg.Done()
	backoff := f.cfg.BackoffMin
	for {
		select {
		case <-f.done:
			return
		default:
		}
		f.setState("connecting")
		metricReconnects.Inc()
		f.mu.Lock()
		f.reconnects++
		f.mu.Unlock()
		addr := f.primaryAddr()
		conn, err := f.cfg.Dial(addr, f.cfg.DialTimeout)
		if err != nil {
			faultConn.Inc()
			f.logf("repl: dial %s: %v", addr, err)
			if !f.sleep(backoff) {
				return
			}
			backoff = f.nextBackoff(backoff)
			continue
		}
		f.mu.Lock()
		f.conn = conn
		f.connected = true
		f.mu.Unlock()

		productive, err := f.session(conn)
		conn.Close()
		f.mu.Lock()
		f.conn = nil
		f.connected = false
		f.mu.Unlock()
		select {
		case <-f.done:
			return
		default:
		}
		if err != nil {
			f.countFault(err)
			f.logf("repl: session with %s ended: %v", addr, err)
		}
		if productive {
			backoff = f.cfg.BackoffMin
		}
		f.setState("backoff")
		if !f.sleep(backoff) {
			return
		}
		backoff = f.nextBackoff(backoff)
	}
}

func (f *Follower) countFault(err error) {
	switch {
	case errors.Is(err, errStaleEpoch):
		faultEpoch.Inc()
		metricFenced.Inc()
	case errors.Is(err, ErrBadFrame):
		faultFrame.Inc()
	case errors.Is(err, errProtocol):
		faultProtocol.Inc()
	default:
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			faultTimeout.Inc()
		} else {
			faultConn.Inc()
		}
	}
}

// sleep waits d plus/minus jitter, returning false if closed meanwhile.
func (f *Follower) sleep(d time.Duration) bool {
	jittered := d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-f.done:
		return false
	case <-t.C:
		return true
	}
}

func (f *Follower) nextBackoff(d time.Duration) time.Duration {
	d *= 2
	if d > f.cfg.BackoffMax {
		d = f.cfg.BackoffMax
	}
	return d
}

// session speaks one connection's worth of protocol: hello, then apply
// frames until something is wrong. It returns whether any frame was
// verified (to reset the backoff) and the terminating error.
func (f *Follower) session(conn net.Conn) (productive bool, err error) {
	f.mu.Lock()
	cur := f.cur
	epoch := f.epoch
	f.mu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(f.cfg.WriteTimeout))
	hello := frame{typ: fHello, epoch: epoch, lsn: cur, payload: encodeHello(f.cfg.ID, schemaHash(f.cfg.Store.Schema()))}
	if err := writeFrame(conn, hello); err != nil {
		return false, err
	}
	f.setState("streaming")
	br := bufio.NewReaderSize(conn, 64<<10)

	// Snapshot bootstrap accumulation. The whole snapshot applies as
	// one replicated transaction at fSnapEnd — wipe plus rebuild — so a
	// fault mid-bootstrap leaves the previous consistent state and the
	// cursor untouched.
	var (
		snapping  bool
		snapLSN   oltp.WALCursor
		snapRows  uint64
		snapAccum []oltp.Change
		snapMeta  []oltp.Change // meta-state changes; not counted in snapRows
	)

	for {
		conn.SetReadDeadline(time.Now().Add(f.cfg.HeartbeatTimeout))
		fr, err := readFrame(br)
		if err != nil {
			return productive, err
		}
		productive = true
		f.mu.Lock()
		f.lastFrame = time.Now()
		f.mu.Unlock()

		// Fencing: no frame from an epoch below ours is ever applied —
		// its sender is a superseded primary. Frames from a HIGHER epoch
		// are only acceptable as a snapshot bootstrap (our cursor indexes
		// the old timeline, so resuming mid-stream would be wrong); the
		// epoch is adopted durably together with the snapshot cursor.
		if fr.epoch < epoch && fr.typ != fError {
			return productive, fmt.Errorf("%w: %s frame from epoch %d, ours %d", errStaleEpoch, fr.typ, fr.epoch, epoch)
		}
		if fr.epoch > epoch && fr.typ != fSnapBegin && fr.typ != fError {
			return productive, fmt.Errorf("%w: %s frame from newer epoch %d without snapshot bootstrap (ours %d)", errProtocol, fr.typ, fr.epoch, epoch)
		}

		switch fr.typ {
		case fTx:
			if snapping {
				return productive, fmt.Errorf("%w: tx frame inside snapshot", errProtocol)
			}
			if !cur.Less(fr.lsn) {
				return productive, fmt.Errorf("%w: tx LSN %s not after cursor %s", errProtocol, fr.lsn, cur)
			}
			tx, err := oltp.DecodeTxPayload(fr.payload)
			if err != nil {
				return productive, fmt.Errorf("%w: %v", ErrBadFrame, err)
			}
			tx.End = fr.lsn
			batch := []oltp.CommittedTx{tx}
			last := fr.lsn
			// Drain tx frames the primary already sent into the same
			// apply batch: one local WAL fsync and one cursor save then
			// cover all of them, which is what makes backlog catch-up
			// disk-bound on batches rather than on per-tx syncs. Only
			// fully buffered headers are peeked, so an idle stream never
			// blocks here.
			for len(batch) < maxApplyBatch && br.Buffered() >= headerLen {
				hdr, err := br.Peek(5)
				if err != nil || frameType(hdr[4]) != fTx {
					break
				}
				nfr, err := readFrame(br)
				if err != nil {
					return productive, err
				}
				if !last.Less(nfr.lsn) {
					return productive, fmt.Errorf("%w: tx LSN %s not after %s", errProtocol, nfr.lsn, last)
				}
				ntx, err := oltp.DecodeTxPayload(nfr.payload)
				if err != nil {
					return productive, fmt.Errorf("%w: %v", ErrBadFrame, err)
				}
				ntx.End = nfr.lsn
				batch = append(batch, ntx)
				last = nfr.lsn
			}
			if err := f.cfg.Store.ApplyReplicated(batch); err != nil {
				faultApply.Inc()
				return productive, err
			}
			metricTxApplied.Add(uint64(len(batch)))
			cur = last
			if err := f.advance(epoch, cur); err != nil {
				return productive, err
			}
			if err := f.ack(conn, epoch, cur); err != nil {
				return productive, err
			}

		case fHeartbeat:
			if snapping {
				return productive, fmt.Errorf("%w: heartbeat inside snapshot", errProtocol)
			}
			// The stream is single and in-order: a heartbeat at L means
			// everything up to L was already delivered to us, so the
			// cursor may fast-forward even though no tx frames arrived.
			if cur.Less(fr.lsn) {
				cur = fr.lsn
				if err := f.advance(epoch, cur); err != nil {
					return productive, err
				}
			}
			if err := f.ack(conn, epoch, cur); err != nil {
				return productive, err
			}
			f.markReady()

		case fSnapBegin:
			if snapping {
				return productive, fmt.Errorf("%w: nested snapshot", errProtocol)
			}
			rows, err := decodeSnapBegin(fr.payload)
			if err != nil {
				return productive, err
			}
			// Adopt the sender's (equal or higher) epoch: it becomes
			// durable only at fSnapEnd, in the same record as the
			// snapshot cursor, so a fault mid-bootstrap leaves the old
			// (epoch, cursor) pair intact.
			epoch = fr.epoch
			snapping, snapLSN, snapRows = true, fr.lsn, rows
			snapAccum, snapMeta = snapAccum[:0], snapMeta[:0]
			f.setState("snapshotting")
			f.mu.Lock()
			f.resyncs++
			f.mu.Unlock()
			metricResyncs.Inc()
			f.logf("repl: snapshot bootstrap from %s: %d rows at %s (epoch %d)", conn.RemoteAddr(), rows, fr.lsn, epoch)

		case fSnapChunk:
			if !snapping {
				return productive, fmt.Errorf("%w: snapshot chunk outside snapshot", errProtocol)
			}
			chunk, err := oltp.DecodeTxPayload(fr.payload)
			if err != nil {
				return productive, fmt.Errorf("%w: %v", ErrBadFrame, err)
			}
			for _, ch := range chunk.Changes {
				switch ch.Op {
				case oltp.ChangeInsert:
					snapAccum = append(snapAccum, ch)
				case oltp.ChangeMeta:
					snapMeta = append(snapMeta, ch)
				default:
					return productive, fmt.Errorf("%w: non-insert in snapshot chunk", errProtocol)
				}
			}
			if uint64(len(snapAccum)) > snapRows {
				return productive, fmt.Errorf("%w: snapshot overflow: %d rows announced, %d received", errProtocol, snapRows, len(snapAccum))
			}

		case fSnapEnd:
			if !snapping || fr.lsn != snapLSN {
				return productive, fmt.Errorf("%w: unmatched snapshot end", errProtocol)
			}
			if uint64(len(snapAccum)) != snapRows {
				return productive, fmt.Errorf("%w: snapshot short: %d rows announced, %d received", errProtocol, snapRows, len(snapAccum))
			}
			// Wipe-and-rebuild as one transaction: deletes of every
			// current local row, then the snapshot inserts. Idempotent
			// and atomic through the local WAL.
			changes := make([]oltp.Change, 0, len(snapAccum)+len(snapMeta)+16)
			for _, id := range f.cfg.Store.RowIDs() {
				changes = append(changes, oltp.Change{Op: oltp.ChangeDelete, ID: id})
			}
			changes = append(changes, snapAccum...)
			// Meta-state restore applies after the rows, inside the same
			// transaction: the follower's KB (or other meta state) is
			// replaced atomically with its row image.
			changes = append(changes, snapMeta...)
			if err := f.cfg.Store.ApplyReplicated([]oltp.CommittedTx{{Changes: changes}}); err != nil {
				faultApply.Inc()
				return productive, err
			}
			cur = snapLSN
			if err := f.advance(epoch, cur); err != nil {
				return productive, err
			}
			if err := f.ack(conn, epoch, cur); err != nil {
				return productive, err
			}
			snapping = false
			f.setState("streaming")
			f.markReady()

		case fError:
			return productive, fmt.Errorf("repl: primary refused session: %s", fr.payload)

		default:
			return productive, fmt.Errorf("%w: unexpected %s frame", errProtocol, fr.typ)
		}
	}
}

// advance persists the new durable (epoch, cursor) pair.
func (f *Follower) advance(epoch uint64, cur oltp.WALCursor) error {
	if f.cfg.Dir != "" {
		if err := saveCursor(f.fs, f.cfg.Dir, epoch, cur); err != nil {
			return err
		}
	}
	f.mu.Lock()
	f.epoch = epoch
	f.cur = cur
	f.mu.Unlock()
	metricEpoch.Set(float64(epoch))
	return nil
}

// ack reports the applied cursor (and our epoch) back to the primary.
func (f *Follower) ack(conn net.Conn, epoch uint64, cur oltp.WALCursor) error {
	conn.SetWriteDeadline(time.Now().Add(f.cfg.WriteTimeout))
	return writeFrame(conn, frame{typ: fAck, epoch: epoch, lsn: cur})
}
