// Package repl implements one-directional WAL-shipping replication: a
// primary streams committed transactions over TCP to follower
// processes, which apply them to their own local store and serve reads
// at full speed while the primary takes writes.
//
// The wire is a sequence of frames, each carrying its LSN (the oltp
// WALCursor the receiver holds once the frame is applied), length and a
// CRC32-C checksum over header and payload — the same checksum
// discipline as the WAL segments the stream is read from. The receiver
// validates every frame and treats any fault — connection drop, torn
// frame, checksum mismatch, LSN regression, heartbeat silence — the
// same way: tear the connection down and reconnect with capped
// exponential backoff plus jitter, resuming from the durable replication
// cursor. When the primary has checkpoint-truncated past that cursor it
// answers the handshake with a full snapshot bootstrap instead (the
// cdc ErrGap→Reset protocol, extended over the wire).
//
// The primary pins WAL retention per registered follower so a live
// follower never needs a resync, and evicts the pin of any follower
// more than MaxLagSegments behind so a permanently dead follower cannot
// exhaust the primary's disk.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"

	"github.com/ddgms/ddgms/internal/oltp"
	"github.com/ddgms/ddgms/internal/storage"
)

// Frame layout, little-endian:
//
//	magic   uint32  "DRPL"
//	type    uint8
//	epoch   uint64  sender's replication epoch (fencing term)
//	lsn.seq uint64
//	lsn.off uint64  (as uint64 two's complement of the int64 offset)
//	length  uint32  payload bytes
//	crc     uint32  CRC32-C over type..length header bytes + payload
//	payload [length]byte
//
// Every frame carries the sender's epoch so fencing needs no extra
// round trips: a follower rejects any frame from an epoch below its
// own, and a primary fences itself the moment a hello or ack arrives
// from a higher epoch. Wire version 2 added the epoch field; there is
// no cross-version compatibility (both ends ship in this repo).
const (
	frameMagic  = uint32(0x4452504C) // "DRPL"
	headerLen   = 4 + 1 + 8 + 8 + 8 + 4 + 4
	maxPayload  = 1 << 26 // matches the WAL's own frame bound
	wireVersion = 2
)

// frameType discriminates wire frames.
type frameType uint8

const (
	// fHello is the follower's first frame: version, follower id,
	// schema hash and resume cursor (as the frame LSN).
	fHello frameType = 1 + iota
	// fTx carries one committed transaction; the LSN is the cursor just
	// past it (CommittedTx.End).
	fTx
	// fHeartbeat is sent by the primary when the follower is fully
	// caught up; its LSN is the streamed-up-to cursor, which the
	// follower may adopt directly (the stream is single and in-order,
	// so nothing can have been skipped).
	fHeartbeat
	// fSnapBegin opens a snapshot bootstrap: payload is the row count,
	// LSN is the snapshot's consistency point.
	fSnapBegin
	// fSnapChunk carries a batch of snapshot rows.
	fSnapChunk
	// fSnapEnd closes the bootstrap; same LSN as fSnapBegin. The
	// follower applies the whole snapshot as one transaction when it
	// sees this frame.
	fSnapEnd
	// fAck is the follower's applied-cursor report, driving the
	// primary's lag accounting and retention pins.
	fAck
	// fError carries a terminal human-readable refusal (schema
	// mismatch, bad version) before the primary closes the connection.
	fError
)

func (t frameType) String() string {
	switch t {
	case fHello:
		return "hello"
	case fTx:
		return "tx"
	case fHeartbeat:
		return "heartbeat"
	case fSnapBegin:
		return "snap-begin"
	case fSnapChunk:
		return "snap-chunk"
	case fSnapEnd:
		return "snap-end"
	case fAck:
		return "ack"
	case fError:
		return "error"
	default:
		return fmt.Sprintf("frameType(%d)", uint8(t))
	}
}

// ErrBadFrame reports a frame the receiver refused: bad magic, bad
// checksum, oversized or truncated. It always forces a reconnect.
var ErrBadFrame = errors.New("repl: bad frame")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frame is one wire frame.
type frame struct {
	typ     frameType
	epoch   uint64
	lsn     oltp.WALCursor
	payload []byte
}

// appendFrame serialises f onto buf and returns the extended slice.
func appendFrame(buf []byte, f frame) ([]byte, error) {
	if len(f.payload) > maxPayload {
		return nil, fmt.Errorf("%w: payload %d exceeds %d", ErrBadFrame, len(f.payload), maxPayload)
	}
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], frameMagic)
	hdr[4] = byte(f.typ)
	binary.LittleEndian.PutUint64(hdr[5:13], f.epoch)
	binary.LittleEndian.PutUint64(hdr[13:21], f.lsn.Seq)
	binary.LittleEndian.PutUint64(hdr[21:29], uint64(f.lsn.Off))
	binary.LittleEndian.PutUint32(hdr[29:33], uint32(len(f.payload)))
	crc := crc32.Checksum(hdr[4:33], castagnoli)
	crc = crc32.Update(crc, castagnoli, f.payload)
	binary.LittleEndian.PutUint32(hdr[33:37], crc)
	buf = append(buf, hdr[:]...)
	buf = append(buf, f.payload...)
	return buf, nil
}

// writeFrame serialises and writes one frame.
func writeFrame(w io.Writer, f frame) error {
	buf, err := appendFrame(nil, f)
	if err != nil {
		return err
	}
	n, err := w.Write(buf)
	if err != nil {
		return err
	}
	metricBytes.Add(uint64(n))
	metricFramesSent.Inc()
	return nil
}

// readFrame reads and validates one frame. Any violation returns an
// error wrapping ErrBadFrame; io errors pass through for the caller's
// reconnect logic.
func readFrame(r io.Reader) (frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != frameMagic {
		return frame{}, fmt.Errorf("%w: bad magic %08x", ErrBadFrame, binary.LittleEndian.Uint32(hdr[0:4]))
	}
	f := frame{
		typ:   frameType(hdr[4]),
		epoch: binary.LittleEndian.Uint64(hdr[5:13]),
		lsn: oltp.WALCursor{
			Seq: binary.LittleEndian.Uint64(hdr[13:21]),
			Off: int64(binary.LittleEndian.Uint64(hdr[21:29])),
		},
	}
	length := binary.LittleEndian.Uint32(hdr[29:33])
	if length > maxPayload {
		return frame{}, fmt.Errorf("%w: payload %d exceeds %d", ErrBadFrame, length, maxPayload)
	}
	want := binary.LittleEndian.Uint32(hdr[33:37])
	if length > 0 {
		f.payload = make([]byte, length)
		if _, err := io.ReadFull(r, f.payload); err != nil {
			return frame{}, err
		}
	}
	crc := crc32.Checksum(hdr[4:33], castagnoli)
	crc = crc32.Update(crc, castagnoli, f.payload)
	if crc != want {
		return frame{}, fmt.Errorf("%w: checksum mismatch on %s frame", ErrBadFrame, f.typ)
	}
	metricBytes.Add(uint64(headerLen) + uint64(length))
	metricFramesRecv.Inc()
	return f, nil
}

// schemaHash fingerprints a schema (field names and kinds, in order) so
// the handshake can refuse a follower built against different columns.
func schemaHash(s *storage.Schema) uint64 {
	h := fnv.New64a()
	for i := 0; i < s.Len(); i++ {
		f := s.Field(i)
		io.WriteString(h, f.Name)
		h.Write([]byte{0, byte(f.Kind), 0})
	}
	return h.Sum64()
}

// helloPayload is the follower's handshake: wire version, schema hash
// and follower id. The resume cursor rides as the frame LSN.
func encodeHello(id string, schema uint64) []byte {
	buf := make([]byte, 0, 1+8+1+len(id))
	buf = append(buf, wireVersion)
	buf = binary.LittleEndian.AppendUint64(buf, schema)
	buf = binary.AppendUvarint(buf, uint64(len(id)))
	buf = append(buf, id...)
	return buf
}

const maxFollowerID = 256

func decodeHello(p []byte) (id string, schema uint64, err error) {
	if len(p) < 1+8+1 {
		return "", 0, fmt.Errorf("%w: hello too short", ErrBadFrame)
	}
	if p[0] != wireVersion {
		return "", 0, fmt.Errorf("repl: wire version %d not supported", p[0])
	}
	schema = binary.LittleEndian.Uint64(p[1:9])
	n, used := binary.Uvarint(p[9:])
	if used <= 0 || n > maxFollowerID || int(n) != len(p)-9-used {
		return "", 0, fmt.Errorf("%w: bad hello id", ErrBadFrame)
	}
	return string(p[9+used:]), schema, nil
}

// Snapshot chunks reuse the oltp row-change codec: a chunk payload is
// an EncodeTxPayload of insert changes, so the follower can decode it
// with the same function it uses for fTx payloads.

// encodeSnapBegin carries the total row count.
func encodeSnapBegin(rows uint64) []byte {
	return binary.AppendUvarint(nil, rows)
}

func decodeSnapBegin(p []byte) (uint64, error) {
	rows, used := binary.Uvarint(p)
	if used <= 0 || used != len(p) {
		return 0, fmt.Errorf("%w: bad snap-begin payload", ErrBadFrame)
	}
	return rows, nil
}
