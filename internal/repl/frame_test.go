package repl

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/ddgms/ddgms/internal/oltp"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []frame{
		{typ: fHello, lsn: oltp.WALCursor{Seq: 3, Off: 999}, payload: encodeHello("f1", 0xDEADBEEF)},
		{typ: fTx, lsn: oltp.WALCursor{Seq: 1, Off: 8}, payload: []byte("payload")},
		{typ: fHeartbeat, lsn: oltp.WALCursor{Seq: 7, Off: 1 << 40}},
		{typ: fSnapBegin, lsn: oltp.WALCursor{Seq: 2, Off: 64}, payload: encodeSnapBegin(123456)},
		{typ: fAck},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := writeFrame(&buf, f); err != nil {
			t.Fatalf("writeFrame(%s): %v", f.typ, err)
		}
	}
	for _, want := range frames {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame(%s): %v", want.typ, err)
		}
		if got.typ != want.typ || got.lsn != want.lsn || !bytes.Equal(got.payload, want.payload) {
			t.Fatalf("round trip mismatch: want %+v, got %+v", want, got)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes after reading all frames", buf.Len())
	}
}

func TestReadFrameRejectsCorruption(t *testing.T) {
	good, err := appendFrame(nil, frame{typ: fTx, lsn: oltp.WALCursor{Seq: 9, Off: 100}, payload: []byte("hello world")})
	if err != nil {
		t.Fatalf("appendFrame: %v", err)
	}
	// Flip each byte in turn: every single-byte corruption must be
	// rejected (bad magic or bad checksum), never silently accepted.
	for i := range good {
		bad := append([]byte{}, good...)
		bad[i] ^= 0x01
		if _, err := readFrame(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
	// Every truncation must fail cleanly too.
	for i := 0; i < len(good); i++ {
		_, err := readFrame(bytes.NewReader(good[:i]))
		if err == nil {
			t.Fatalf("truncation to %d bytes accepted", i)
		}
		if i >= headerLen && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
			// Truncated payload must read as an io error, driving the
			// receiver's reconnect path, not a panic.
			t.Fatalf("truncation to %d bytes: unexpected error %v", i, err)
		}
	}
}

func TestHelloRoundTripAndLimits(t *testing.T) {
	id, schema, err := decodeHello(encodeHello("follower-7", 42))
	if err != nil || id != "follower-7" || schema != 42 {
		t.Fatalf("hello round trip: %q %d %v", id, schema, err)
	}
	if _, _, err := decodeHello([]byte{99}); err == nil {
		t.Fatalf("short hello accepted")
	}
	if _, _, err := decodeHello(encodeHello(string(make([]byte, 1000)), 1)); err == nil {
		t.Fatalf("oversized follower id accepted")
	}
	bad := encodeHello("x", 1)
	bad[0] = 77 // wrong wire version
	if _, _, err := decodeHello(bad); err == nil {
		t.Fatalf("wrong version accepted")
	}
}

// FuzzFrameRoundTrip is the satellite fuzz target: arbitrary bytes must
// never panic the reader, and every frame the writer produces must read
// back identically — including maximum-size payloads (exercised via the
// seed corpus; the fuzzer mutates from there).
func FuzzFrameRoundTrip(f *testing.F) {
	big, _ := appendFrame(nil, frame{typ: fTx, payload: bytes.Repeat([]byte{0xAB}, 1<<16)})
	f.Add(big)
	small, _ := appendFrame(nil, frame{typ: fHeartbeat, lsn: oltp.WALCursor{Seq: 5, Off: 77}})
	f.Add(small)
	f.Add([]byte{})
	f.Add([]byte("LPRDgarbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return // malformed input rejected without panic: the contract
		}
		// Anything accepted must re-encode to a prefix of the input.
		out, err := appendFrame(nil, fr)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		if len(out) > len(data) || !bytes.Equal(out, data[:len(out)]) {
			t.Fatalf("accepted frame does not round trip")
		}
	})
}
