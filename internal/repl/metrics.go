package repl

import "github.com/ddgms/ddgms/internal/obs"

// Replication metric families. Faults and resyncs are the health
// signals: a nonzero fault rate under steady state means the network or
// a peer is unhealthy, and every resync is a full snapshot ship, so a
// steady resync rate means retention (or MaxLagSegments) is too tight.
var (
	metricFramesSent = obs.Default().Counter(
		"ddgms_repl_frames_sent_total",
		"Replication frames written to the wire.")
	metricFramesRecv = obs.Default().Counter(
		"ddgms_repl_frames_received_total",
		"Replication frames read and verified from the wire.")
	metricBytes = obs.Default().Counter(
		"ddgms_repl_bytes_total",
		"Replication bytes moved (sent plus received, framed).")
	metricTxShipped = obs.Default().Counter(
		"ddgms_repl_transactions_shipped_total",
		"Committed transactions streamed to followers.")
	metricTxApplied = obs.Default().Counter(
		"ddgms_repl_transactions_applied_total",
		"Replicated transactions applied to the local store.")
	metricFaults = obs.Default().CounterVec(
		"ddgms_repl_faults_total",
		"Replication faults by kind; every one forces a reconnect.",
		"kind")
	metricReconnects = obs.Default().Counter(
		"ddgms_repl_reconnects_total",
		"Follower reconnect attempts.")
	metricResyncs = obs.Default().Counter(
		"ddgms_repl_resyncs_total",
		"Snapshot bootstraps (follower cursor truncated past; full ship).")
	metricEvictions = obs.Default().Counter(
		"ddgms_repl_evictions_total",
		"Follower retention pins evicted for exceeding MaxLagSegments.")
	metricFollowers = obs.Default().Gauge(
		"ddgms_repl_followers_connected",
		"Currently connected followers (primary side).")
	metricCursorSaves = obs.Default().Counter(
		"ddgms_repl_cursor_saves_total",
		"Durable replication cursor writes (follower side).")
	metricEpoch = obs.Default().Gauge(
		"ddgms_repl_epoch",
		"This node's replication epoch (fencing term); bumps on promotion.")
	metricFenced = obs.Default().Counter(
		"ddgms_repl_fenced_total",
		"Times this node fenced itself or rejected a stale-epoch peer.")

	faultConn     = metricFaults.WithLabelValues("conn")
	faultFrame    = metricFaults.WithLabelValues("frame")
	faultTimeout  = metricFaults.WithLabelValues("timeout")
	faultProtocol = metricFaults.WithLabelValues("protocol")
	faultApply    = metricFaults.WithLabelValues("apply")
	faultEpoch    = metricFaults.WithLabelValues("epoch")
)
