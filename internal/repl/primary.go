package repl

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"github.com/ddgms/ddgms/internal/faultfs"
	"github.com/ddgms/ddgms/internal/oltp"
)

// PrimaryConfig configures the sending side of replication.
type PrimaryConfig struct {
	// Store is the primary's oltp store, whose WAL is shipped.
	Store *oltp.Store
	// Listener accepts follower connections. The primary owns it and
	// closes it on Close. Tests inject a faultnet-wrapped listener.
	Listener net.Listener
	// Epoch is the replication epoch this primary leads. Zero means
	// "resolve from Dir": the highest durably recorded epoch, or 1 on a
	// fresh node. Promote passes follower-epoch+1 explicitly.
	Epoch uint64
	// Dir, when set, persists the epoch durably (and is where a
	// previously-follower node left its cursor record). A primary that
	// restarts without it cannot prove which epoch it led.
	Dir string
	// FS is the filesystem for epoch persistence; nil means the real one.
	FS faultfs.FS
	// OnFenced fires (once, from its own goroutine) when this primary
	// observes a higher epoch on the wire and fences itself: it has
	// stopped streaming and refuses all sessions. The hook is where the
	// embedding process demotes the store back to replica mode.
	OnFenced func(higherEpoch uint64)
	// MaxLagSegments evicts a follower's retention pin once it falls
	// more than this many WAL segments behind the durable tail; the
	// follower must snapshot-bootstrap when it returns. 0 disables
	// eviction (a dead follower then pins disk forever). Default 8.
	MaxLagSegments uint64
	// HeartbeatEvery is how often a caught-up follower is sent a
	// heartbeat frame (which also advances its cursor). Default 500ms.
	HeartbeatEvery time.Duration
	// WriteTimeout bounds each frame write so a stalled follower is
	// detected and dropped. Default 5s.
	WriteTimeout time.Duration
	// HandshakeTimeout bounds the wait for the hello frame. Default 5s.
	HandshakeTimeout time.Duration
	// SnapshotChunkRows is the row count per snapshot chunk frame.
	// Default 512.
	SnapshotChunkRows int
	// BatchTx caps transactions read per TailWAL poll. Default 64.
	BatchTx int
	// Log, when set, receives connection lifecycle lines.
	Log *log.Logger
}

// followerRec is the primary's accounting for one follower id. Records
// outlive connections: a disconnected follower keeps its retention pin
// (so it can resume without a resync) until eviction fires.
type followerRec struct {
	id        string
	conn      net.Conn // live connection, nil when disconnected
	connected bool
	snapping  bool
	streamed  oltp.WALCursor // last frame LSN written to the wire
	acked     oltp.WALCursor // last fAck received
	pinned    bool
	pinSeq    uint64
	lastAck   time.Time
	resyncs   uint64
	evicted   bool
}

// Primary streams the store's committed transactions to any number of
// followers, each on its own connection with its own retention pin.
type Primary struct {
	cfg    PrimaryConfig
	store  *oltp.Store
	ln     net.Listener
	schema uint64
	epoch  uint64

	mu        sync.Mutex
	followers map[string]*followerRec
	closed    bool
	fenced    bool

	fenceOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// StartPrimary begins accepting followers on cfg.Listener.
func StartPrimary(cfg PrimaryConfig) (*Primary, error) {
	if cfg.Store == nil || cfg.Listener == nil {
		return nil, errors.New("repl: primary needs a store and a listener")
	}
	if cfg.FS == nil {
		cfg.FS = faultfs.OS{}
	}
	if cfg.Epoch == 0 {
		if cfg.Dir != "" {
			known, err := knownEpoch(cfg.FS, cfg.Dir)
			if err != nil {
				return nil, err
			}
			cfg.Epoch = known
		}
		if cfg.Epoch == 0 {
			cfg.Epoch = 1
		}
	}
	if cfg.Dir != "" {
		if err := cfg.FS.MkdirAll(cfg.Dir); err != nil {
			return nil, fmt.Errorf("repl: creating epoch dir: %w", err)
		}
		if err := saveEpoch(cfg.FS, cfg.Dir, cfg.Epoch); err != nil {
			return nil, err
		}
	}
	if cfg.MaxLagSegments == 0 {
		cfg.MaxLagSegments = 8
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 500 * time.Millisecond
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 5 * time.Second
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	if cfg.SnapshotChunkRows <= 0 {
		cfg.SnapshotChunkRows = 512
	}
	if cfg.BatchTx <= 0 {
		cfg.BatchTx = 64
	}
	p := &Primary{
		cfg:       cfg,
		store:     cfg.Store,
		ln:        cfg.Listener,
		schema:    schemaHash(cfg.Store.Schema()),
		epoch:     cfg.Epoch,
		followers: make(map[string]*followerRec),
		done:      make(chan struct{}),
	}
	metricEpoch.Set(float64(p.epoch))
	p.wg.Add(2)
	go p.acceptLoop()
	go p.janitor()
	return p, nil
}

// Addr is the listener's address, for followers to dial.
func (p *Primary) Addr() string { return p.ln.Addr().String() }

// Epoch is the replication epoch this primary leads.
func (p *Primary) Epoch() uint64 { return p.epoch }

// Fenced reports whether this primary observed a higher epoch and
// fenced itself.
func (p *Primary) Fenced() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fenced
}

// fence marks the primary fenced: it stops every stream by closing the
// follower connections, refuses all future sessions, and fires OnFenced
// exactly once so the embedding process can demote the store. The
// listener stays up on purpose — an arriving follower gets an explicit
// fError refusal naming the higher epoch, which is a faster signal than
// a connection refused.
func (p *Primary) fence(higher uint64) {
	p.mu.Lock()
	if p.fenced || p.closed {
		p.mu.Unlock()
		return
	}
	p.fenced = true
	for _, rec := range p.followers {
		if rec.conn != nil {
			rec.conn.Close()
		}
	}
	p.mu.Unlock()
	metricFenced.Inc()
	p.logf("repl: fenced: observed epoch %d above our %d; streaming stopped", higher, p.epoch)
	p.fenceOnce.Do(func() {
		if p.cfg.OnFenced != nil {
			// Untracked on purpose: the hook may call back into Close.
			go p.cfg.OnFenced(higher)
		}
	})
}

// Close stops accepting, drops every follower connection and releases
// their retention pins.
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	for _, rec := range p.followers {
		if rec.conn != nil {
			rec.conn.Close()
		}
		if rec.pinned {
			p.store.UnpinWAL(pinName(rec.id))
			rec.pinned = false
		}
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func pinName(id string) string { return "repl:" + id }

func (p *Primary) logf(format string, args ...any) {
	if p.cfg.Log != nil {
		p.cfg.Log.Printf(format, args...)
	}
}

func (p *Primary) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.done:
				return
			default:
			}
			// Transient accept errors (including a faulted test
			// listener): keep serving unless closed.
			continue
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handleConn(conn)
		}()
	}
}

// janitor enforces MaxLagSegments: any follower whose pin trails the
// durable tail too far loses it (and its connection), bounding primary
// disk regardless of dead followers. The pin floor is driven by acks —
// what the follower has durably applied — so an evicted follower is one
// that genuinely stopped making progress.
func (p *Primary) janitor() {
	defer p.wg.Done()
	tick := time.NewTicker(p.cfg.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-tick.C:
		}
		durable, err := p.store.DurableLSN()
		if err != nil {
			continue
		}
		p.mu.Lock()
		for _, rec := range p.followers {
			if !rec.pinned || durable.Seq-rec.pinSeq <= p.cfg.MaxLagSegments {
				continue
			}
			p.store.UnpinWAL(pinName(rec.id))
			rec.pinned = false
			rec.evicted = true
			if rec.conn != nil {
				rec.conn.Close()
			}
			metricEvictions.Inc()
			p.logf("repl: evicted follower %q (pinned seq %d, durable seq %d)", rec.id, rec.pinSeq, durable.Seq)
		}
		p.mu.Unlock()
	}
}

// handleConn owns one follower connection: handshake, then a single
// writer loop (stream + heartbeats) with a companion ack reader.
func (p *Primary) handleConn(conn net.Conn) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(p.cfg.HandshakeTimeout))
	hello, err := readFrame(conn)
	if err != nil || hello.typ != fHello {
		faultProtocol.Inc()
		return
	}
	id, schema, err := decodeHello(hello.payload)
	if err != nil {
		faultProtocol.Inc()
		return
	}
	if schema != p.schema {
		p.refuse(conn, fmt.Sprintf("schema hash mismatch: primary %016x, follower %016x", p.schema, schema))
		return
	}
	if hello.epoch > p.epoch {
		// The cluster moved on without us: someone was promoted to a
		// higher epoch while we still think we lead. Fence before
		// refusing — we must not ship another frame.
		p.fence(hello.epoch)
		p.refuse(conn, fmt.Sprintf("fenced: follower at epoch %d, we led epoch %d", hello.epoch, p.epoch))
		return
	}
	// A follower from a lower epoch carries a cursor into a superseded
	// timeline; its position is meaningless against our WAL. Force a
	// snapshot bootstrap by discarding the resume cursor.
	resume := hello.lsn
	if hello.epoch < p.epoch {
		p.logf("repl: follower %q at stale epoch %d (ours %d): forcing snapshot bootstrap", id, hello.epoch, p.epoch)
		resume = oltp.WALCursor{}
	}

	p.mu.Lock()
	if p.closed || p.fenced {
		fenced := p.fenced
		p.mu.Unlock()
		if fenced {
			p.refuse(conn, fmt.Sprintf("fenced: this primary's epoch %d was superseded", p.epoch))
		}
		return
	}
	rec := p.followers[id]
	if rec == nil {
		rec = &followerRec{id: id}
		p.followers[id] = rec
	}
	if rec.conn != nil {
		rec.conn.Close() // latest connection wins
	}
	rec.conn = conn
	rec.connected = true
	rec.evicted = false
	p.mu.Unlock()
	metricFollowers.Add(1)
	p.logf("repl: follower %q connected from %s at %s", id, conn.RemoteAddr(), hello.lsn)

	defer func() {
		p.mu.Lock()
		if rec.conn == conn { // a newer connection may have taken over
			rec.conn = nil
			rec.connected = false
			rec.snapping = false
		}
		p.mu.Unlock()
		metricFollowers.Add(-1)
	}()

	// connDone wakes the writer when the ack reader dies.
	connDone := make(chan struct{})
	go p.readAcks(conn, rec, connDone)
	p.stream(conn, rec, resume, connDone)
}

func (p *Primary) refuse(conn net.Conn, msg string) {
	faultProtocol.Inc()
	conn.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
	writeFrame(conn, frame{typ: fError, epoch: p.epoch, payload: []byte(msg)})
	p.logf("repl: refused follower from %s: %s", conn.RemoteAddr(), msg)
}

// readAcks consumes fAck frames, advancing the follower's lag
// accounting and retention pin.
func (p *Primary) readAcks(conn net.Conn, rec *followerRec, connDone chan struct{}) {
	defer close(connDone)
	for {
		conn.SetReadDeadline(time.Now().Add(10 * p.cfg.HeartbeatEvery))
		fr, err := readFrame(conn)
		if err != nil {
			return
		}
		if fr.typ != fAck {
			faultProtocol.Inc()
			return
		}
		if fr.epoch > p.epoch {
			p.fence(fr.epoch)
			return
		}
		p.mu.Lock()
		if rec.conn == conn {
			rec.acked = fr.lsn
			rec.lastAck = time.Now()
			if !rec.evicted {
				p.store.PinWAL(pinName(rec.id), fr.lsn.Seq)
				rec.pinned = true
				rec.pinSeq = fr.lsn.Seq
			}
		}
		p.mu.Unlock()
	}
}

// stream is the connection's only writer: it bootstraps (snapshot or
// resume), ships committed transactions as they land, and heartbeats
// when caught up.
func (p *Primary) stream(conn net.Conn, rec *followerRec, from oltp.WALCursor, connDone chan struct{}) {
	pin := pinName(rec.id)
	cur := from

	// Resume needs the follower's position still on disk; pin it first,
	// then probe. A zero cursor (fresh follower) always bootstraps.
	needSnap := cur.IsZero()
	if !needSnap {
		p.mu.Lock()
		p.store.PinWAL(pin, cur.Seq)
		rec.pinned, rec.pinSeq = true, cur.Seq
		p.mu.Unlock()
		if _, _, err := p.store.TailWAL(cur, 1); errors.Is(err, oltp.ErrTailGap) {
			needSnap = true
		} else if err != nil {
			return
		}
	}
	if needSnap {
		next, err := p.snapshot(conn, rec, pin)
		if err != nil {
			p.logf("repl: snapshot ship to %q failed: %v", rec.id, err)
			return
		}
		cur = next
	}

	commits := p.store.SubscribeCommits()
	defer p.store.UnsubscribeCommits(commits)
	tick := time.NewTicker(p.cfg.HeartbeatEvery)
	defer tick.Stop()

	for {
		// Ship everything durable past cur.
		for {
			txs, next, err := p.store.TailWAL(cur, p.cfg.BatchTx)
			if err != nil {
				// Pinned segments cannot be swept, so a gap here means
				// our own pin was evicted: drop the conn, the follower
				// will reconnect into a snapshot.
				p.logf("repl: tail for %q failed at %s: %v", rec.id, cur, err)
				return
			}
			if len(txs) == 0 {
				cur = next
				break
			}
			for i := range txs {
				payload, err := oltp.EncodeTxPayload(txs[i])
				if err != nil {
					p.logf("repl: encoding tx for %q: %v", rec.id, err)
					return
				}
				conn.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
				if err := writeFrame(conn, frame{typ: fTx, epoch: p.epoch, lsn: txs[i].End, payload: payload}); err != nil {
					faultConn.Inc()
					return
				}
				metricTxShipped.Inc()
			}
			cur = txs[len(txs)-1].End
			p.mu.Lock()
			if rec.conn == conn {
				rec.streamed = cur
			}
			p.mu.Unlock()
		}

		select {
		case <-p.done:
			return
		case <-connDone:
			return
		case <-commits:
		case <-tick.C:
			// Caught up: heartbeat carries the streamed-up-to cursor so
			// an idle follower's cursor (and pin) tracks the tail.
			conn.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
			if err := writeFrame(conn, frame{typ: fHeartbeat, epoch: p.epoch, lsn: cur}); err != nil {
				faultConn.Inc()
				return
			}
		}
	}
}

// snapshot ships a full SnapshotWithLSN bootstrap and returns the
// cursor to stream from afterwards. The pin is taken atomically at the
// durable LSN before the snapshot is cut, so the tail from snap.LSN
// onward cannot be swept in between.
func (p *Primary) snapshot(conn net.Conn, rec *followerRec, pin string) (oltp.WALCursor, error) {
	pinCur, err := p.store.PinWALAtDurable(pin)
	if err != nil {
		return oltp.WALCursor{}, err
	}
	p.mu.Lock()
	rec.pinned, rec.pinSeq = true, pinCur.Seq
	rec.snapping = true
	rec.resyncs++
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		rec.snapping = false
		p.mu.Unlock()
	}()
	metricResyncs.Inc()

	snap, err := p.store.SnapshotWithLSN()
	if err != nil {
		return oltp.WALCursor{}, err
	}
	n := snap.Table.Len()
	conn.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
	if err := writeFrame(conn, frame{typ: fSnapBegin, epoch: p.epoch, lsn: snap.LSN, payload: encodeSnapBegin(uint64(n))}); err != nil {
		faultConn.Inc()
		return oltp.WALCursor{}, err
	}
	for start := 0; start < n; start += p.cfg.SnapshotChunkRows {
		end := start + p.cfg.SnapshotChunkRows
		if end > n {
			end = n
		}
		chunk := oltp.CommittedTx{Changes: make([]oltp.Change, 0, end-start)}
		for i := start; i < end; i++ {
			chunk.Changes = append(chunk.Changes, oltp.Change{
				Op:  oltp.ChangeInsert,
				ID:  snap.IDs[i],
				Row: snap.Table.Row(i),
			})
		}
		payload, err := oltp.EncodeTxPayload(chunk)
		if err != nil {
			return oltp.WALCursor{}, err
		}
		conn.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
		if err := writeFrame(conn, frame{typ: fSnapChunk, epoch: p.epoch, lsn: snap.LSN, payload: payload}); err != nil {
			faultConn.Inc()
			return oltp.WALCursor{}, err
		}
	}
	if len(snap.Meta) > 0 {
		// Meta state (e.g. the findings KB) travels in the bootstrap as
		// one meta change, applied inside the same wipe-and-rebuild
		// transaction as the rows. It does not count toward the announced
		// row total.
		payload, err := oltp.EncodeTxPayload(oltp.CommittedTx{Changes: []oltp.Change{oltp.MetaChange(snap.Meta)}})
		if err != nil {
			return oltp.WALCursor{}, err
		}
		conn.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
		if err := writeFrame(conn, frame{typ: fSnapChunk, epoch: p.epoch, lsn: snap.LSN, payload: payload}); err != nil {
			faultConn.Inc()
			return oltp.WALCursor{}, err
		}
	}
	conn.SetWriteDeadline(time.Now().Add(p.cfg.WriteTimeout))
	if err := writeFrame(conn, frame{typ: fSnapEnd, epoch: p.epoch, lsn: snap.LSN}); err != nil {
		faultConn.Inc()
		return oltp.WALCursor{}, err
	}
	p.logf("repl: shipped snapshot to %q: %d rows at %s", rec.id, n, snap.LSN)
	return snap.LSN, nil
}

// Status reports the primary's view for the /replication endpoint.
func (p *Primary) Status() Status {
	st := Status{
		Role:    "primary",
		Epoch:   p.epoch,
		Addr:    p.ln.Addr().String(),
		Primary: p.ln.Addr().String(),
		Fenced:  p.Fenced(),
	}
	if durable, err := p.store.DurableLSN(); err == nil {
		st.DurableLSN = &durable
	}
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, rec := range p.followers {
		fi := FollowerInfo{
			ID:          rec.id,
			Connected:   rec.connected,
			AckedLSN:    rec.acked,
			StreamedLSN: rec.streamed,
			Resyncs:     rec.resyncs,
			Evicted:     rec.evicted,
		}
		switch {
		case rec.evicted:
			fi.State = "evicted"
		case !rec.connected:
			fi.State = "disconnected"
		case rec.snapping:
			fi.State = "snapshotting"
		default:
			fi.State = "streaming"
		}
		if st.DurableLSN != nil && st.DurableLSN.Seq > rec.acked.Seq {
			fi.LagSegments = st.DurableLSN.Seq - rec.acked.Seq
		}
		if !rec.lastAck.IsZero() {
			fi.SecondsSinceAck = now.Sub(rec.lastAck).Seconds()
		}
		st.Followers = append(st.Followers, fi)
	}
	sortFollowers(st.Followers)
	return st
}
