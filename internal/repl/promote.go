package repl

import (
	"errors"
	"fmt"
	"log"
	"net"
	"time"
)

// PromoteConfig configures a follower-to-primary promotion.
type PromoteConfig struct {
	// Follower is the node being promoted. It is stopped first; its
	// store, cursor dir and filesystem carry over to the new primary.
	Follower *Follower
	// Listener accepts re-homing followers; the new primary owns it.
	Listener net.Listener
	// OnFenced and the tuning fields below configure the new primary;
	// see PrimaryConfig. Zero values take PrimaryConfig defaults.
	OnFenced          func(higherEpoch uint64)
	MaxLagSegments    uint64
	HeartbeatEvery    time.Duration
	WriteTimeout      time.Duration
	HandshakeTimeout  time.Duration
	SnapshotChunkRows int
	BatchTx           int
	Log               *log.Logger
}

// Promote turns a follower into the primary of epoch n+1.
//
// The sequence is: stop the replication session; verify the local WAL
// tail end to end (every retained record re-read and checksummed — a
// store we cannot prove intact must not lead); leave replica mode so
// local commits are accepted again; start a primary on the listener at
// the follower's epoch plus one, persisting the new epoch in the same
// directory as the replication cursor. Any failure before the replica
// flag is dropped leaves the node a consistent (stopped) follower;
// failure starting the listener re-enters replica mode so Promote can
// be retried cleanly — re-promotion is idempotent in effect because the
// epoch bump only becomes durable once the primary is up.
//
// Surviving followers do not find the new primary on their own: the
// caller (or an operator, or the routing front's /cluster view) points
// them at it with Rehome. Their old-timeline cursors are handled by the
// epoch rules — the new primary forces a snapshot bootstrap for any
// hello from a lower epoch.
func Promote(cfg PromoteConfig) (*Primary, error) {
	f := cfg.Follower
	if f == nil || cfg.Listener == nil {
		return nil, errors.New("repl: promote needs a follower and a listener")
	}
	f.Close()
	store := f.cfg.Store
	if err := store.Healthy(); err != nil {
		return nil, fmt.Errorf("repl: promote refused, store unhealthy: %w", err)
	}
	if _, err := store.VerifyWALTail(); err != nil {
		return nil, fmt.Errorf("repl: promote refused, WAL tail verification failed: %w", err)
	}
	epoch := f.Epoch() + 1
	store.SetReplica(false)
	p, err := StartPrimary(PrimaryConfig{
		Store:             store,
		Listener:          cfg.Listener,
		Epoch:             epoch,
		Dir:               f.cfg.Dir,
		FS:                f.fs,
		OnFenced:          cfg.OnFenced,
		MaxLagSegments:    cfg.MaxLagSegments,
		HeartbeatEvery:    cfg.HeartbeatEvery,
		WriteTimeout:      cfg.WriteTimeout,
		HandshakeTimeout:  cfg.HandshakeTimeout,
		SnapshotChunkRows: cfg.SnapshotChunkRows,
		BatchTx:           cfg.BatchTx,
		Log:               cfg.Log,
	})
	if err != nil {
		store.SetReplica(true)
		return nil, err
	}
	if cfg.Log != nil {
		cfg.Log.Printf("repl: promoted follower %q to primary at epoch %d on %s", f.cfg.ID, epoch, p.Addr())
	}
	return p, nil
}
