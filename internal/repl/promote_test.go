package repl

import (
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/ddgms/ddgms/internal/faultnet"
	"github.com/ddgms/ddgms/internal/oltp"
)

// Promotion and fencing tests: the HA contract is that a promoted
// follower takes over writes at a strictly higher epoch with zero loss
// of committed transactions, surviving followers re-home onto it, and a
// returned stale primary is fenced the moment the higher epoch touches
// it — it can neither accept followers nor poison one.

// waitSameState polls until the two stores hold identical rows. Unlike
// waitConverged it does not compare WAL cursors: after a promotion the
// re-homed follower's cursor is from the old timeline and the new
// primary's WAL has its own segment layout, so LSNs from the two are
// not comparable — state equality is the cross-timeline ground truth.
func waitSameState(t *testing.T, want, got *oltp.Store) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if statesEqual(stateOf(t, want), stateOf(t, got)) {
			return
		}
		if time.Now().After(deadline) {
			sameState(t, want, got) // report the diff
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func statesEqual(a, b map[oltp.RowID]oltp.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for id, w := range a {
		g, ok := b[id]
		if !ok || len(g) != len(w) {
			return false
		}
		for i := range w {
			if !w[i].Equal(g[i]) {
				return false
			}
		}
	}
	return true
}

func promote(t *testing.T, f *Follower) *Primary {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	p, err := Promote(PromoteConfig{
		Follower:       f,
		Listener:       ln,
		MaxLagSegments: 1000,
		HeartbeatEvery: 25 * time.Millisecond,
		WriteTimeout:   time.Second,
		BatchTx:        8,
	})
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestPromoteTakesOverWritesAndRehomesSurvivors(t *testing.T) {
	psA := openStore(t, t.TempDir(), smallSegs())
	commitN(t, psA, 20, 0)
	pA := startPrimary(t, psA, 1000)

	fsB := openStore(t, t.TempDir(), smallSegs())
	fB := startFollower(t, followerConfig(fsB, t.TempDir(), pA.Addr(), "b"))
	fsC := openStore(t, t.TempDir(), smallSegs())
	fC := startFollower(t, followerConfig(fsC, t.TempDir(), pA.Addr(), "c"))
	waitReady(t, fB)
	waitReady(t, fC)
	commitN(t, psA, 20, 100)
	waitConverged(t, psA, fB)
	waitConverged(t, psA, fC)

	pA.Close() // primary dies

	pB := promote(t, fB)
	if pB.Epoch() != 2 {
		t.Fatalf("promoted primary epoch = %d, want 2", pB.Epoch())
	}
	if st := pB.Status(); st.Role != "primary" || st.Epoch != 2 || st.Fenced {
		t.Fatalf("promoted status: %+v", st)
	}

	// The promoted store accepts local commits again.
	commitN(t, fsB, 15, 1000)

	// The surviving follower re-homes; its epoch-1 cursor is from the old
	// timeline, so the new primary forces a snapshot bootstrap.
	fC.Rehome(pB.Addr())
	waitSameState(t, fsB, fsC)
	if got := len(stateOf(t, fsC)); got != 55 {
		t.Fatalf("re-homed follower has %d rows, want 55 (zero committed txs lost)", got)
	}
	waitFollowerEpoch(t, fC, 2, pB.Addr())
}

// waitFollowerEpoch polls until the follower reports the given epoch
// and primary. State equality can hold an instant before the epoch
// does — the epoch becomes durable only at snapshot end, after the
// last row has already been applied.
func waitFollowerEpoch(t *testing.T, f *Follower, epoch uint64, primary string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := f.Status()
		if st.Epoch == epoch && st.Primary == primary {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never reached epoch %d at %s: %+v", epoch, primary, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStalePrimaryFencedByHigherEpoch(t *testing.T) {
	dirA := t.TempDir()
	psA := openStore(t, dirA, smallSegs())
	commitN(t, psA, 10, 0)
	pA := startPrimary(t, psA, 1000)

	fsB := openStore(t, t.TempDir(), smallSegs())
	fB := startFollower(t, followerConfig(fsB, t.TempDir(), pA.Addr(), "b"))
	waitReady(t, fB)
	waitConverged(t, psA, fB)

	pA.Close()
	pB := promote(t, fB)
	commitN(t, fsB, 10, 500)

	// A follower joins the new timeline so its durable epoch becomes 2.
	fsD := openStore(t, t.TempDir(), smallSegs())
	dirD := t.TempDir()
	fD := startFollower(t, followerConfig(fsD, dirD, pB.Addr(), "d"))
	waitReady(t, fD)
	waitConverged(t, fsB, fD)
	fD.Close()
	before := len(stateOf(t, fsD))

	// The old primary comes back, still claiming epoch 1.
	lnA2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	fencedCh := make(chan uint64, 1)
	pA2, err := StartPrimary(PrimaryConfig{
		Store:          psA,
		Listener:       lnA2,
		Epoch:          1,
		MaxLagSegments: 1000,
		HeartbeatEvery: 25 * time.Millisecond,
		WriteTimeout:   time.Second,
		OnFenced:       func(e uint64) { fencedCh <- e },
	})
	if err != nil {
		t.Fatalf("StartPrimary (returned stale): %v", err)
	}
	t.Cleanup(func() { pA2.Close() })

	// An epoch-2 follower misdirected at the stale primary must fence it
	// on the handshake and apply nothing from the old timeline.
	fD2 := startFollower(t, followerConfig(fsD, dirD, pA2.Addr(), "d"))
	select {
	case e := <-fencedCh:
		if e != 2 {
			t.Fatalf("OnFenced(%d), want 2", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stale primary never fenced")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !pA2.Fenced() {
		if time.Now().After(deadline) {
			t.Fatal("Fenced() never became true")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := pA2.Status(); !st.Fenced || st.Role != "primary" {
		t.Fatalf("fenced primary status: %+v", st)
	}
	if got := len(stateOf(t, fsD)); got != before {
		t.Fatalf("fenced exchange changed follower state: %d rows, had %d", got, before)
	}

	// A fenced primary refuses fresh followers outright.
	fsE := openStore(t, t.TempDir(), smallSegs())
	fE := startFollower(t, followerConfig(fsE, t.TempDir(), pA2.Addr(), "e"))
	select {
	case <-fE.Ready():
		t.Fatal("follower of a fenced primary became ready")
	case <-time.After(400 * time.Millisecond):
	}
	if fsE.Len() != 0 {
		t.Fatal("fenced primary shipped data")
	}

	// Recovery: re-homed onto the real primary, the misdirected follower
	// converges to the live timeline.
	fD2.Rehome(pB.Addr())
	waitSameState(t, fsB, fsD)
	waitFollowerEpoch(t, fD2, 2, pB.Addr())
}

// TestPromoteFaultSweep arms every faultnet mode at a range of
// operation offsets from the re-home dial onward: whatever the wire
// does during the cutover, the surviving follower reconverges onto the
// promoted primary with byte-identical state.
func TestPromoteFaultSweep(t *testing.T) {
	modes := []faultnet.Mode{faultnet.Drop, faultnet.Partial, faultnet.Corrupt, faultnet.Stall}
	for _, mode := range modes {
		for _, at := range []uint64{1, 2, 3, 5, 9} {
			t.Run(fmt.Sprintf("%s_at_%d", mode, at), func(t *testing.T) {
				psA := openStore(t, t.TempDir(), smallSegs())
				commitN(t, psA, 15, 0)
				pA := startPrimary(t, psA, 1000)

				fsB := openStore(t, t.TempDir(), smallSegs())
				fB := startFollower(t, followerConfig(fsB, t.TempDir(), pA.Addr(), "b"))

				fault := faultnet.New()
				fault.SetStall(600 * time.Millisecond) // beyond HeartbeatTimeout
				fsC := openStore(t, t.TempDir(), smallSegs())
				cfgC := followerConfig(fsC, t.TempDir(), pA.Addr(), "c")
				cfgC.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
					c, err := net.DialTimeout("tcp", addr, timeout)
					if err != nil {
						return nil, err
					}
					return fault.Conn(c), nil
				}
				fC := startFollower(t, cfgC)
				waitReady(t, fB)
				waitReady(t, fC)
				commitN(t, psA, 10, 100)
				waitConverged(t, psA, fB)
				waitConverged(t, psA, fC)

				pA.Close()
				pB := promote(t, fB)
				commitN(t, fsB, 10, 1000)

				// Arm relative to the current op count so the fault lands
				// on the re-home session, not the initial sync.
				fault.ArmAt(fault.Ops()+at, mode)
				fC.Rehome(pB.Addr())
				waitSameState(t, fsB, fsC)
				if !fault.Fired() {
					t.Skipf("fault at +%d never reached (session used fewer ops)", at)
				}
			})
		}
	}
}

// TestPromoteFailureLeavesConsistentFollowerStore: when the listener
// cannot start, the store must re-enter replica mode so the node stays
// a well-behaved (stopped) follower and Promote can be retried.
func TestPromoteFailureReversible(t *testing.T) {
	psA := openStore(t, t.TempDir(), smallSegs())
	commitN(t, psA, 10, 0)
	pA := startPrimary(t, psA, 1000)
	fsB := openStore(t, t.TempDir(), smallSegs())
	fB := startFollower(t, followerConfig(fsB, t.TempDir(), pA.Addr(), "b"))
	waitReady(t, fB)
	waitConverged(t, psA, fB)

	if _, err := Promote(PromoteConfig{Follower: fB}); err == nil {
		t.Fatal("Promote without a listener succeeded")
	}
	// The store must still be in replica mode: the nil-listener failure
	// happens before any state change, so local commits stay refused.
	tx := fsB.Begin()
	if _, err := tx.Insert(row(9999, 1, "M")); err != nil {
		t.Fatalf("Insert staging: %v", err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("local commit succeeded on follower after failed Promote")
	}

	// Retry with a real listener works: promotion is restartable.
	pA.Close()
	pB := promote(t, fB)
	commitN(t, fsB, 5, 900)
	if pB.Epoch() != 2 {
		t.Fatalf("retried promotion epoch = %d, want 2", pB.Epoch())
	}
}

func TestEpochAndCursorPersistence(t *testing.T) {
	fs := smallSegs().FS
	dir := t.TempDir()

	// Nothing on disk: epoch 0, no cursor.
	if e, err := knownEpoch(fs, dir); err != nil || e != 0 {
		t.Fatalf("knownEpoch(empty) = %d, %v", e, err)
	}

	// Cursor record carries the epoch with it.
	cur := oltp.WALCursor{Seq: 7, Off: 4096}
	if err := saveCursor(fs, dir, 3, cur); err != nil {
		t.Fatalf("saveCursor: %v", err)
	}
	e, got, ok, err := loadCursor(fs, dir)
	if err != nil || !ok || e != 3 || got != cur {
		t.Fatalf("loadCursor = epoch %d cur %s ok %v err %v", e, got, ok, err)
	}
	if e, err := knownEpoch(fs, dir); err != nil || e != 3 {
		t.Fatalf("knownEpoch(cursor only) = %d, %v", e, err)
	}

	// The standalone epoch file (written by a promoted primary) takes
	// precedence when higher: a node that led at epoch 5 must never come
	// back believing epoch 3.
	if err := saveEpoch(fs, dir, 5); err != nil {
		t.Fatalf("saveEpoch: %v", err)
	}
	if e, err := knownEpoch(fs, dir); err != nil || e != 5 {
		t.Fatalf("knownEpoch(epoch file 5, cursor 3) = %d, %v", e, err)
	}
	if e, ok, err := loadEpoch(fs, dir); err != nil || !ok || e != 5 {
		t.Fatalf("loadEpoch = %d, %v, %v", e, ok, err)
	}
}

func TestPromotionEpochSurvivesRestart(t *testing.T) {
	psA := openStore(t, t.TempDir(), smallSegs())
	commitN(t, psA, 10, 0)
	pA := startPrimary(t, psA, 1000)
	dirB := t.TempDir()
	fsB := openStore(t, t.TempDir(), smallSegs())
	fB := startFollower(t, followerConfig(fsB, dirB, pA.Addr(), "b"))
	waitReady(t, fB)
	waitConverged(t, psA, fB)
	pA.Close()

	pB := promote(t, fB)
	if pB.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", pB.Epoch())
	}
	pB.Close()

	// The epoch survives in the cursor directory: a primary restarted
	// from the same dir resumes at 2, not 1.
	if e, err := knownEpoch(smallSegs().FS, dirB); err != nil || e != 2 {
		t.Fatalf("knownEpoch after promotion = %d, %v", e, err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	pB2, err := StartPrimary(PrimaryConfig{
		Store:          fsB,
		Listener:       ln,
		Dir:            dirB,
		MaxLagSegments: 1000,
		HeartbeatEvery: 25 * time.Millisecond,
		WriteTimeout:   time.Second,
	})
	if err != nil {
		t.Fatalf("StartPrimary (restart): %v", err)
	}
	defer pB2.Close()
	if pB2.Epoch() != 2 {
		t.Fatalf("restarted primary epoch = %d, want 2", pB2.Epoch())
	}
}
