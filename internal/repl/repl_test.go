package repl

import (
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/ddgms/ddgms/internal/faultfs"
	"github.com/ddgms/ddgms/internal/faultnet"
	"github.com/ddgms/ddgms/internal/oltp"
	"github.com/ddgms/ddgms/internal/storage"
	"github.com/ddgms/ddgms/internal/value"
)

// End-to-end replication tests over real loopback TCP. The contract:
// whatever faults the wire or the follower process suffers, the
// follower's store reconverges to byte-for-byte the primary's state,
// and the primary's disk stays bounded.

func testSchema() *storage.Schema {
	return storage.MustSchema(
		storage.Field{Name: "PatientID", Kind: value.IntKind},
		storage.Field{Name: "FBG", Kind: value.FloatKind},
		storage.Field{Name: "Gender", Kind: value.StringKind},
	)
}

func row(id int64, fbg float64, gender string) oltp.Row {
	return oltp.Row{value.Int(id), value.Float(fbg), value.Str(gender)}
}

// smallSegs rotates aggressively so retention/eviction mechanics are
// exercised by modest workloads.
func smallSegs() oltp.Options {
	return oltp.Options{FS: faultfs.OS{}, SegmentBytes: 1 << 9, CheckpointBytes: 1 << 11}
}

func openStore(t *testing.T, dir string, opts oltp.Options) *oltp.Store {
	t.Helper()
	s, err := oltp.OpenWith(dir, testSchema(), opts)
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func commitN(t *testing.T, s *oltp.Store, n int, seed int64) {
	t.Helper()
	for i := 0; i < n; i++ {
		tx := s.Begin()
		if _, err := tx.Insert(row(seed+int64(i), float64(i)*0.25, "F")); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
}

func startPrimary(t *testing.T, store *oltp.Store, maxLag uint64) *Primary {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	p, err := StartPrimary(PrimaryConfig{
		Store:          store,
		Listener:       ln,
		MaxLagSegments: maxLag,
		HeartbeatEvery: 25 * time.Millisecond,
		WriteTimeout:   time.Second,
		BatchTx:        8,
	})
	if err != nil {
		t.Fatalf("StartPrimary: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func followerConfig(store *oltp.Store, dir, addr, id string) FollowerConfig {
	return FollowerConfig{
		Store:            store,
		Dir:              dir,
		PrimaryAddr:      addr,
		ID:               id,
		DialTimeout:      time.Second,
		HeartbeatTimeout: 400 * time.Millisecond,
		WriteTimeout:     time.Second,
		BackoffMin:       10 * time.Millisecond,
		BackoffMax:       100 * time.Millisecond,
	}
}

func startFollower(t *testing.T, cfg FollowerConfig) *Follower {
	t.Helper()
	f, err := StartFollower(cfg)
	if err != nil {
		t.Fatalf("StartFollower: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// stateOf captures committed rows keyed by id.
func stateOf(t *testing.T, s *oltp.Store) map[oltp.RowID]oltp.Row {
	t.Helper()
	out := make(map[oltp.RowID]oltp.Row)
	tx := s.Begin()
	defer tx.Rollback()
	tx.Scan(func(id oltp.RowID, r oltp.Row) bool {
		out[id] = r
		return true
	})
	return out
}

func sameState(t *testing.T, primary, follower *oltp.Store) {
	t.Helper()
	want, got := stateOf(t, primary), stateOf(t, follower)
	if len(want) != len(got) {
		t.Fatalf("row count mismatch: primary %d, follower %d", len(want), len(got))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Fatalf("row %d missing on follower", id)
		}
		for i := range w {
			if !w[i].Equal(g[i]) {
				t.Fatalf("row %d col %d: primary %v, follower %v", id, i, w[i], g[i])
			}
		}
	}
}

// waitConverged polls until the follower's cursor reaches the primary's
// durable LSN and the states match.
func waitConverged(t *testing.T, ps *oltp.Store, f *Follower) {
	t.Helper()
	durable, err := ps.DurableLSN()
	if err != nil {
		t.Fatalf("DurableLSN: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur := f.Cursor()
		if !cur.Less(durable) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at %s, primary durable %s", cur, durable)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitReady(t *testing.T, f *Follower) {
	t.Helper()
	select {
	case <-f.Ready():
	case <-time.After(10 * time.Second):
		t.Fatalf("follower never became ready")
	}
}

func TestSnapshotBootstrapThenStream(t *testing.T) {
	ps := openStore(t, t.TempDir(), smallSegs())
	commitN(t, ps, 40, 0)
	if err := ps.Checkpoint(); err != nil { // truncate history: zero cursor is a gap
		t.Fatalf("Checkpoint: %v", err)
	}
	p := startPrimary(t, ps, 1000)

	fs := openStore(t, t.TempDir(), smallSegs())
	f := startFollower(t, followerConfig(fs, t.TempDir(), p.Addr(), "f1"))
	waitReady(t, f)
	waitConverged(t, ps, f)
	sameState(t, ps, fs)

	// Live streaming after the bootstrap.
	commitN(t, ps, 30, 1000)
	waitConverged(t, ps, f)
	sameState(t, ps, fs)

	st := f.Status()
	if st.Role != "follower" || st.Resyncs != 1 || !st.Connected {
		t.Fatalf("follower status: %+v", st)
	}
	pst := p.Status()
	if len(pst.Followers) != 1 || pst.Followers[0].ID != "f1" || pst.Followers[0].State != "streaming" {
		t.Fatalf("primary status: %+v", pst)
	}
	if pst.Followers[0].Resyncs != 1 {
		t.Fatalf("primary counted %d resyncs, want 1", pst.Followers[0].Resyncs)
	}
}

func TestReplicaRefusesLocalWritesWhileFollowing(t *testing.T) {
	ps := openStore(t, t.TempDir(), smallSegs())
	commitN(t, ps, 5, 0)
	p := startPrimary(t, ps, 1000)
	fs := openStore(t, t.TempDir(), smallSegs())
	f := startFollower(t, followerConfig(fs, t.TempDir(), p.Addr(), "f1"))
	waitReady(t, f)
	tx := fs.Begin()
	if _, err := tx.Insert(row(99, 1, "M")); err != nil {
		t.Fatalf("Insert staging: %v", err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatalf("local commit on follower store succeeded")
	}
}

func TestFollowerRestartResumesWithoutResync(t *testing.T) {
	ps := openStore(t, t.TempDir(), smallSegs())
	commitN(t, ps, 20, 0)
	p := startPrimary(t, ps, 1000)

	fdirStore, fdirCur := t.TempDir(), t.TempDir()
	fs := openStore(t, fdirStore, smallSegs())
	f := startFollower(t, followerConfig(fs, fdirCur, p.Addr(), "f1"))
	waitReady(t, f)
	waitConverged(t, ps, f)

	// Kill the follower mid-life, write more on the primary, restart.
	f.Close()
	fs.Close()
	commitN(t, ps, 25, 500)

	fs2 := openStore(t, fdirStore, smallSegs())
	f2 := startFollower(t, followerConfig(fs2, fdirCur, p.Addr(), "f1"))
	waitConverged(t, ps, f2)
	sameState(t, ps, fs2)
	// The pin held while the follower was away: resuming must not have
	// needed a snapshot.
	if st := f2.Status(); st.Resyncs != 0 {
		t.Fatalf("restart forced %d resyncs, want 0", st.Resyncs)
	}
}

// TestFaultSweep arms every faultnet mode at a range of operation
// numbers on the follower's connections and checks reconvergence with
// byte-identical state after each.
func TestFaultSweep(t *testing.T) {
	modes := []faultnet.Mode{faultnet.Drop, faultnet.Partial, faultnet.Corrupt, faultnet.Stall}
	for _, mode := range modes {
		for _, at := range []uint64{1, 2, 3, 5, 9, 17} {
			t.Run(fmt.Sprintf("%s_at_%d", mode, at), func(t *testing.T) {
				ps := openStore(t, t.TempDir(), smallSegs())
				commitN(t, ps, 15, 0)
				p := startPrimary(t, ps, 1000)

				fault := faultnet.New()
				fault.SetStall(600 * time.Millisecond) // beyond HeartbeatTimeout
				fault.ArmAt(at, mode)
				cfg := followerConfig(openStore(t, t.TempDir(), smallSegs()), t.TempDir(), p.Addr(), "f1")
				fstore := cfg.Store
				baseDial := func(addr string, timeout time.Duration) (net.Conn, error) {
					return net.DialTimeout("tcp", addr, timeout)
				}
				cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
					c, err := baseDial(addr, timeout)
					if err != nil {
						return nil, err
					}
					return fault.Conn(c), nil
				}
				f := startFollower(t, cfg)
				waitReady(t, f)
				commitN(t, ps, 20, 100)
				waitConverged(t, ps, f)
				sameState(t, ps, fstore)
				if !fault.Fired() {
					t.Skipf("fault at op %d never reached (session used fewer ops)", at)
				}
			})
		}
	}
}

// TestPrimaryDiskBoundedWithDeadFollower checks max-lag eviction: a
// follower that connects once and dies must not pin the primary's WAL
// forever; after eviction the segment count stays bounded, and the
// returning follower resyncs via snapshot.
func TestPrimaryDiskBoundedWithDeadFollower(t *testing.T) {
	dir := t.TempDir()
	ps := openStore(t, dir, smallSegs())
	p := startPrimary(t, ps, 2) // evict beyond 2 segments of lag

	fdirCur := t.TempDir()
	fs := openStore(t, t.TempDir(), smallSegs())
	f := startFollower(t, followerConfig(fs, fdirCur, p.Addr(), "dead"))
	waitReady(t, f)
	f.Close() // the follower dies, pin left behind

	// Push far past the eviction horizon; checkpoints sweep segments
	// only below the retention floor, so if the pin were immortal the
	// directory would keep growing.
	commitN(t, ps, 400, 0)
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := p.Status()
		if len(st.Followers) == 1 && st.Followers[0].Evicted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("eviction never fired: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := ps.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	names, err := faultfs.OS{}.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	// Post-eviction checkpoint leaves exactly one live segment + one
	// checkpoint (plus nothing pinned); allow slack for a rotation race.
	if len(names) > 4 {
		t.Fatalf("primary dir not bounded after eviction: %d files: %v", len(names), names)
	}

	// The evicted follower returns: it must reconverge via snapshot.
	fs2 := openStore(t, t.TempDir(), smallSegs())
	f2 := startFollower(t, followerConfig(fs2, fdirCur, p.Addr(), "dead"))
	waitReady(t, f2)
	waitConverged(t, ps, f2)
	sameState(t, ps, fs2)
	if st := f2.Status(); st.Resyncs != 1 {
		t.Fatalf("returning evicted follower resyncs = %d, want 1", st.Resyncs)
	}
}

// TestTwoFollowersIndependentPins runs two followers at different
// speeds and checks both converge and the primary reports both.
func TestTwoFollowersIndependentPins(t *testing.T) {
	ps := openStore(t, t.TempDir(), smallSegs())
	commitN(t, ps, 10, 0)
	p := startPrimary(t, ps, 1000)

	fs1 := openStore(t, t.TempDir(), smallSegs())
	f1 := startFollower(t, followerConfig(fs1, t.TempDir(), p.Addr(), "a"))
	fs2 := openStore(t, t.TempDir(), smallSegs())
	f2 := startFollower(t, followerConfig(fs2, t.TempDir(), p.Addr(), "b"))
	waitReady(t, f1)
	waitReady(t, f2)
	commitN(t, ps, 40, 100)
	waitConverged(t, ps, f1)
	waitConverged(t, ps, f2)
	sameState(t, ps, fs1)
	sameState(t, ps, fs2)
	st := p.Status()
	if len(st.Followers) != 2 {
		t.Fatalf("primary sees %d followers, want 2", len(st.Followers))
	}
	for _, fi := range st.Followers {
		if !fi.Connected || fi.Evicted {
			t.Fatalf("follower %q unhealthy in status: %+v", fi.ID, fi)
		}
	}
}

// TestSchemaMismatchRefused checks the handshake rejects a follower
// with different columns rather than shipping garbage.
func TestSchemaMismatchRefused(t *testing.T) {
	ps := openStore(t, t.TempDir(), smallSegs())
	p := startPrimary(t, ps, 1000)

	other := storage.MustSchema(storage.Field{Name: "X", Kind: value.IntKind})
	fstore, err := oltp.OpenWith(t.TempDir(), other, smallSegs())
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	defer fstore.Close()
	f := startFollower(t, followerConfig(fstore, t.TempDir(), p.Addr(), "bad"))
	// The follower must never become ready; give it a few sessions.
	select {
	case <-f.Ready():
		t.Fatalf("mismatched follower became ready")
	case <-time.After(500 * time.Millisecond):
	}
	if fstore.Len() != 0 {
		t.Fatalf("mismatched follower received data")
	}
}
