package repl

import (
	"sort"

	"github.com/ddgms/ddgms/internal/oltp"
)

// FollowerInfo is one follower's health as seen by the primary.
type FollowerInfo struct {
	ID        string `json:"id"`
	Connected bool   `json:"connected"`
	// State is streaming, snapshotting, disconnected or evicted.
	State       string         `json:"state"`
	AckedLSN    oltp.WALCursor `json:"acked_lsn"`
	StreamedLSN oltp.WALCursor `json:"streamed_lsn"`
	// LagSegments is how many WAL segments the follower's applied
	// position trails the primary's durable tail.
	LagSegments     uint64  `json:"lag_segments"`
	SecondsSinceAck float64 `json:"seconds_since_ack,omitempty"`
	Resyncs         uint64  `json:"resyncs"`
	Evicted         bool    `json:"evicted"`
}

// Status is the /replication endpoint's body for either role.
type Status struct {
	// Role is "primary" or "follower".
	Role string `json:"role"`
	// Epoch is the node's replication epoch (fencing term). It is
	// monotonic across promotions: each Promote leads epoch+1, and any
	// node seeing a higher epoch on the wire knows its own timeline is
	// stale.
	Epoch uint64 `json:"epoch"`
	// Primary is the current primary's replication address as this node
	// knows it: its own listener address on a primary, the address being
	// followed on a follower. Routers and operators resolve the cluster
	// head by taking the highest-epoch non-fenced claimant.
	Primary string `json:"primary,omitempty"`

	// Primary-side fields.
	Addr       string          `json:"addr,omitempty"`
	DurableLSN *oltp.WALCursor `json:"durable_lsn,omitempty"`
	Followers  []FollowerInfo  `json:"followers,omitempty"`
	// Fenced is set on an ex-primary that observed a higher epoch: it
	// has stopped streaming, refuses every replication session, and must
	// be demoted (core does this via the OnFenced hook).
	Fenced bool `json:"fenced,omitempty"`

	// Follower-side fields.
	ID string `json:"id,omitempty"`
	// State is connecting, snapshotting, streaming or backoff.
	State     string          `json:"state,omitempty"`
	Connected bool            `json:"connected,omitempty"`
	Cursor    *oltp.WALCursor `json:"cursor,omitempty"`
	// SecondsSinceFrame is the staleness signal: time since the last
	// verified frame arrived.
	SecondsSinceFrame float64 `json:"seconds_since_frame,omitempty"`
	Resyncs           uint64  `json:"resyncs,omitempty"`
	Reconnects        uint64  `json:"reconnects,omitempty"`

	// PromoteListen, when set, is the replication listener address this
	// node would bind if promoted (its configured -promote-listen). It is
	// stamped by the platform, not the repl layer, and tells an
	// auto-failover router the node is a viable promotion target.
	PromoteListen string `json:"promote_listen,omitempty"`
}

func sortFollowers(fs []FollowerInfo) {
	sort.Slice(fs, func(a, b int) bool { return fs[a].ID < fs[b].ID })
}
