package repl

import (
	"sort"

	"github.com/ddgms/ddgms/internal/oltp"
)

// FollowerInfo is one follower's health as seen by the primary.
type FollowerInfo struct {
	ID        string `json:"id"`
	Connected bool   `json:"connected"`
	// State is streaming, snapshotting, disconnected or evicted.
	State       string         `json:"state"`
	AckedLSN    oltp.WALCursor `json:"acked_lsn"`
	StreamedLSN oltp.WALCursor `json:"streamed_lsn"`
	// LagSegments is how many WAL segments the follower's applied
	// position trails the primary's durable tail.
	LagSegments     uint64  `json:"lag_segments"`
	SecondsSinceAck float64 `json:"seconds_since_ack,omitempty"`
	Resyncs         uint64  `json:"resyncs"`
	Evicted         bool    `json:"evicted"`
}

// Status is the /replication endpoint's body for either role.
type Status struct {
	// Role is "primary" or "follower".
	Role string `json:"role"`

	// Primary-side fields.
	Addr       string          `json:"addr,omitempty"`
	DurableLSN *oltp.WALCursor `json:"durable_lsn,omitempty"`
	Followers  []FollowerInfo  `json:"followers,omitempty"`

	// Follower-side fields.
	Primary string `json:"primary,omitempty"`
	ID      string `json:"id,omitempty"`
	// State is connecting, snapshotting, streaming or backoff.
	State     string          `json:"state,omitempty"`
	Connected bool            `json:"connected,omitempty"`
	Cursor    *oltp.WALCursor `json:"cursor,omitempty"`
	// SecondsSinceFrame is the staleness signal: time since the last
	// verified frame arrived.
	SecondsSinceFrame float64 `json:"seconds_since_frame,omitempty"`
	Resyncs           uint64  `json:"resyncs,omitempty"`
	Reconnects        uint64  `json:"reconnects,omitempty"`
}

func sortFollowers(fs []FollowerInfo) {
	sort.Slice(fs, func(a, b int) bool { return fs[a].ID < fs[b].ID })
}
