// Package report generates the strategic-level deliverable of the
// DD-DGMS: a screening-programme summary combining OLAP aggregates,
// trajectory projections, the Ewing/CAN assessment and established
// knowledge-base findings into one document. The paper distinguishes
// operational users (short-term outcomes) from strategic users
// (long-term planning); this report is what the second group reads.
package report

import (
	"fmt"
	"io"

	"github.com/ddgms/ddgms/internal/core"
	"github.com/ddgms/ddgms/internal/cube"
	"github.com/ddgms/ddgms/internal/ewing"

	"github.com/ddgms/ddgms/internal/value"
	"github.com/ddgms/ddgms/internal/viz"
)

// Options selects report sections. The zero value renders everything.
type Options struct {
	SkipDemographics bool
	SkipConditions   bool
	SkipTrajectory   bool
	SkipCAN          bool
	SkipFindings     bool
}

// Write renders the programme report to w.
func Write(w io.Writer, p *core.Platform, opts Options) error {
	fmt.Fprintln(w, "=== DD-DGMS screening programme report ===")
	fmt.Fprintf(w, "attendances: %d, dimensions: %d\n",
		p.Warehouse().Fact().Len(), len(p.Warehouse().Dimensions()))

	if !opts.SkipDemographics {
		if err := demographics(w, p); err != nil {
			return fmt.Errorf("report: demographics: %w", err)
		}
	}
	if !opts.SkipConditions {
		if err := conditions(w, p); err != nil {
			return fmt.Errorf("report: conditions: %w", err)
		}
	}
	if !opts.SkipTrajectory {
		if err := trajectory(w, p); err != nil {
			return fmt.Errorf("report: trajectory: %w", err)
		}
	}
	if !opts.SkipCAN {
		if err := can(w, p); err != nil {
			return fmt.Errorf("report: CAN: %w", err)
		}
	}
	if !opts.SkipFindings {
		findings(w, p)
	}
	return nil
}

func demographics(w io.Writer, p *core.Platform) error {
	fmt.Fprintln(w, "\n--- cohort demographics ---")
	cs, err := p.Query(cube.Query{
		Rows:    []cube.AttrRef{core.RefAgeBand10},
		Cols:    []cube.AttrRef{core.RefGender},
		Measure: core.PatientCountMeasure(),
	})
	if err != nil {
		return err
	}
	return viz.CrossTabWithTotals(w, "distinct patients by age band and gender (with margins):", cs)
}

func conditions(w io.Writer, p *core.Platform) error {
	fmt.Fprintln(w, "\n--- condition burden ---")
	cs, err := p.Query(cube.Query{
		Rows:    []cube.AttrRef{core.RefDiabetes},
		Cols:    []cube.AttrRef{core.RefHTStatus},
		Measure: core.PatientCountMeasure(),
	})
	if err != nil {
		return err
	}
	if err := viz.CrossTab(w, "patients by diabetes × hypertension status:", cs); err != nil {
		return err
	}
	pct := cs.PercentOfTotal()
	if err := viz.CrossTab(w, "as percent of cohort:", roundCells(pct)); err != nil {
		return err
	}
	return nil
}

// roundCells renders percents with one decimal for stable report output.
func roundCells(cs *cube.CellSet) *cube.CellSet {
	out := *cs
	out.Cells = make([][]value.Value, len(cs.Cells))
	for i := range cs.Cells {
		out.Cells[i] = make([]value.Value, len(cs.Cells[i]))
		for j, c := range cs.Cells[i] {
			if f, ok := c.AsFloat(); ok {
				out.Cells[i][j] = value.Float(float64(int(f*10+0.5)) / 10)
			} else {
				out.Cells[i][j] = c
			}
		}
	}
	return &out
}

func trajectory(w io.Writer, p *core.Platform) error {
	fmt.Fprintln(w, "\n--- disease-course projection (fasting glucose states) ---")
	m, err := p.TrajectoryModel("PatientID", "VisitDate", "FBG", core.FBGScheme)
	if err != nil {
		return err
	}
	dist, err := m.Next("preDiabetic")
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "  next state from preDiabetic:")
	for _, sp := range dist {
		fmt.Fprintf(w, "    %-12s %.3f\n", sp.State, sp.P)
	}
	// Projected prevalence: start from the cohort's current FBG-state mix
	// and simulate five screening cycles under the status quo.
	initial, err := currentStateMix(p)
	if err != nil {
		return err
	}
	// A band can appear in the warehouse without ever appearing in a
	// multi-visit sequence; the chain does not know such states.
	known := make(map[string]bool)
	for _, s := range m.States() {
		known[s] = true
	}
	for s := range initial {
		if !known[s] {
			delete(initial, s)
		}
	}
	proj, err := m.Project(initial, 5)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "  projected state mix after 5 screening cycles (status quo):")
	for _, sp := range proj[len(proj)-1] {
		fmt.Fprintf(w, "    %-12s %.3f\n", sp.State, sp.P)
	}
	stat, err := m.Stationary(500)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "  long-run occupancy:")
	for _, sp := range stat {
		fmt.Fprintf(w, "    %-12s %.3f\n", sp.State, sp.P)
	}
	return nil
}

// currentStateMix reads the latest FBG band distribution from the
// warehouse as the projection's starting point.
func currentStateMix(p *core.Platform) (map[string]float64, error) {
	cs, err := p.Query(cube.Query{
		Rows:    []cube.AttrRef{core.RefFBGBand},
		Measure: core.PatientCountMeasure(),
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, cs.Rows())
	for i := 0; i < cs.Rows(); i++ {
		out[cs.RowLabel(i)] = cs.CellFloat(i, 0)
	}
	return out, nil
}

func can(w io.Writer, p *core.Platform) error {
	fmt.Fprintln(w, "\n--- cardiovascular autonomic neuropathy (Ewing battery) ---")
	sum, err := ewing.Summarise(p.Flat(), ewing.StandardBattery())
	if err != nil {
		return err
	}
	for _, r := range []ewing.Risk{ewing.RiskNormal, ewing.RiskEarly, ewing.RiskDefinite, ewing.RiskSevere, ewing.RiskUnknown} {
		fmt.Fprintf(w, "  %-10s %d\n", r, sum.ByRisk[r])
	}
	fmt.Fprintf(w, "  hand-grip test missing: %d of %d attendances\n", sum.MissingGrip, sum.Total)
	return nil
}

func findings(w io.Writer, p *core.Platform) {
	fmt.Fprintln(w, "\n--- established knowledge-base findings ---")
	est := p.KB().Established()
	if len(est) == 0 {
		fmt.Fprintln(w, "  (none yet — findings promote after repeated evidence)")
		return
	}
	for _, f := range est {
		fmt.Fprintf(w, "  [%s] %s: %s (evidence %d)\n", f.ID, f.Topic, f.Statement, f.Evidence)
	}
}

// Interventions derives a treatment-candidate list with warehouse-
// estimated exposures, ready for optimize.OptimizeRegimen — the bridge
// from reporting to decision optimisation.
func Interventions(p *core.Platform) (map[string]float64, error) {
	exposure := func(ref cube.AttrRef, val string) (float64, error) {
		cs, err := p.Query(cube.Query{
			Rows:    []cube.AttrRef{ref},
			Slicers: []cube.Slicer{{Ref: ref, Values: []value.Value{value.Str(val)}}},
			Measure: core.PatientCountMeasure(),
		})
		if err != nil {
			return 0, err
		}
		return cs.Total(), nil
	}
	out := make(map[string]float64)
	for name, target := range map[string]struct {
		ref cube.AttrRef
		val string
	}{
		"preDiabetic":  {core.RefFBGBand, "preDiabetic"},
		"diabetic":     {core.RefFBGBand, "Diabetic"},
		"sedentary":    {core.RefExercise, "none"},
		"hypertensive": {core.RefHTStatus, "Yes"},
		"lowRRVar":     {core.RefRRVarBand, "low"},
	} {
		v, err := exposure(target.ref, target.val)
		if err != nil {
			return nil, err
		}
		out[name] = v
	}
	return out, nil
}
