package report

import (
	"strings"
	"testing"

	"github.com/ddgms/ddgms/internal/core"
	"github.com/ddgms/ddgms/internal/discri"
)

func testPlatform(t *testing.T) *core.Platform {
	t.Helper()
	dcfg := discri.DefaultConfig()
	dcfg.Patients = 200
	p, err := core.NewDiScRiPlatform(core.Config{}, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestWriteFullReport(t *testing.T) {
	p := testPlatform(t)
	// Promote one finding so the findings section has content.
	id, err := p.RecordFinding("diabetes", "test finding for the report", "test")
	if err != nil {
		t.Fatal(err)
	}
	p.KB().Reinforce(id)
	p.KB().Reinforce(id)

	var sb strings.Builder
	if err := Write(&sb, p, Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"screening programme report",
		"cohort demographics",
		"with margins",
		"total",
		"condition burden",
		"percent of cohort",
		"disease-course projection",
		"projected state mix after 5 screening cycles",
		"preDiabetic",
		"Ewing battery",
		"hand-grip test missing",
		"established knowledge-base findings",
		"test finding for the report",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWriteSectionsSkippable(t *testing.T) {
	p := testPlatform(t)
	var sb strings.Builder
	err := Write(&sb, p, Options{
		SkipDemographics: true, SkipConditions: true,
		SkipTrajectory: true, SkipCAN: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "cohort demographics") || strings.Contains(out, "Ewing") {
		t.Error("skipped sections rendered")
	}
	// Findings section with empty KB notes its emptiness.
	if !strings.Contains(out, "none yet") {
		t.Error("empty-findings note missing")
	}
}

func TestInterventions(t *testing.T) {
	p := testPlatform(t)
	exposures, err := Interventions(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"preDiabetic", "diabetic", "sedentary", "hypertensive", "lowRRVar"} {
		v, ok := exposures[key]
		if !ok {
			t.Errorf("missing exposure %q", key)
			continue
		}
		if v <= 0 {
			t.Errorf("exposure %q = %g, want > 0", key, v)
		}
		if v > 200 {
			t.Errorf("exposure %q = %g exceeds cohort size", key, v)
		}
	}
}
