package router

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"github.com/ddgms/ddgms/internal/faultfs"
)

// The elector is the router's autonomous-failover half: when the
// failure detector confirms the primary dead and a majority of the
// configured backends is still reachable (so the router knows it is not
// the partitioned minority), it picks the best surviving follower and
// promotes it itself with POST /promote.
//
// Every decision is journaled durably *before* the promote request goes
// out: a router that crashes mid-election reloads the journal on
// restart and resumes the same election — re-issuing the (idempotent)
// promote to the same candidate — instead of electing again and
// double-promoting. Split-brain safety does not rest on the router
// alone: the promoted node leads a strictly higher epoch, so even a
// spurious extra promotion is resolved by the replication layer's epoch
// fencing, with the router following the max-epoch claimant.

const (
	electMagic = "DDGRELE1"
	electFile  = "election.journal"
)

var electCRC = crc32.MakeTable(crc32.Castagnoli)

// electionRecord is one journaled promotion decision. Seq is monotonic
// across elections; Epoch is the highest cluster epoch observed when
// the decision was made (the epoch being superseded), so completion is
// "a primary resolved above Epoch".
type electionRecord struct {
	Seq       uint64 `json:"seq"`
	Epoch     uint64 `json:"epoch"`
	Candidate string `json:"candidate"` // backend host being promoted
	Listen    string `json:"listen"`    // replication listen addr for /promote
	Done      bool   `json:"done"`
}

// encodeElection frames a record as magic + JSON + CRC32-C, the same
// shape as the repl epoch file, so a torn write is detectable.
func encodeElection(rec electionRecord) []byte {
	payload, err := json.Marshal(rec)
	if err != nil {
		// Record fields are strings, ints and a bool; Marshal cannot fail.
		panic(fmt.Sprintf("router: encoding election record: %v", err))
	}
	var buf bytes.Buffer
	buf.WriteString(electMagic)
	buf.Write(payload)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, electCRC))
	buf.Write(crc[:])
	return buf.Bytes()
}

// saveElection durably persists a record under dir (tmp + fsync +
// rename + dir sync), so a crash at any instant leaves either the old
// complete record or the new one — never a torn mixture.
func saveElection(fs faultfs.FS, dir string, rec electionRecord) error {
	data := encodeElection(rec)
	final := filepath.Join(dir, electFile)
	tmpPath := final + ".tmp"
	f, err := fs.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("router: creating election journal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("router: writing election journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("router: syncing election journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("router: closing election journal: %w", err)
	}
	if err := fs.Rename(tmpPath, final); err != nil {
		return fmt.Errorf("router: publishing election journal: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("router: syncing election journal dir: %w", err)
	}
	return nil
}

// loadElection reads the journal; ok=false when none exists or only a
// torn first save is present. A checksum mismatch on a complete file is
// real corruption and is surfaced as an error.
func loadElection(fs faultfs.FS, dir string) (rec electionRecord, ok bool, err error) {
	f, err := fs.Open(filepath.Join(dir, electFile))
	if err != nil {
		return electionRecord{}, false, nil
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return electionRecord{}, false, fmt.Errorf("router: reading election journal: %w", err)
	}
	if len(data) < len(electMagic)+4 || string(data[:len(electMagic)]) != electMagic {
		return electionRecord{}, false, nil // torn first save
	}
	payload := data[len(electMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(payload, electCRC) != want {
		return electionRecord{}, false, errors.New("router: election journal checksum mismatch")
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return electionRecord{}, false, fmt.Errorf("router: decoding election journal: %w", err)
	}
	return rec, true, nil
}

// ElectionStatus is the /cluster view of the elector's last decision.
type ElectionStatus struct {
	Seq       uint64 `json:"seq"`
	Epoch     uint64 `json:"epoch"`
	Candidate string `json:"candidate"`
	Done      bool   `json:"done"`
}

// elector runs the quorum-gated promotion state machine.
type elector struct {
	rt  *Router
	fs  faultfs.FS
	dir string

	mu sync.Mutex
	// rec is the pending or last-completed journaled decision; busy is
	// set while a promote request is in flight; elections counts
	// promotions this router has successfully issued.
	rec       *electionRecord
	busy      bool
	elections uint64
}

func newElector(rt *Router) (*elector, error) {
	if rt.cfg.ElectionDir == "" {
		return nil, errors.New("router: AutoFailover requires ElectionDir")
	}
	fs := faultfs.OS{}
	if err := fs.MkdirAll(rt.cfg.ElectionDir); err != nil {
		return nil, fmt.Errorf("router: election dir: %w", err)
	}
	el := &elector{rt: rt, fs: fs, dir: rt.cfg.ElectionDir}
	rec, ok, err := loadElection(el.fs, el.dir)
	if err != nil {
		return nil, err
	}
	if ok {
		el.rec = &rec
		if !rec.Done {
			rt.logf("router: resuming election seq=%d candidate=%s from journal", rec.Seq, rec.Candidate)
		}
	}
	return el, nil
}

func (el *elector) status() (uint64, *ElectionStatus) {
	el.mu.Lock()
	defer el.mu.Unlock()
	if el.rec == nil {
		return el.elections, nil
	}
	return el.elections, &ElectionStatus{
		Seq: el.rec.Seq, Epoch: el.rec.Epoch,
		Candidate: el.rec.Candidate, Done: el.rec.Done,
	}
}

// observe runs once per probe round with the freshly resolved view. It
// either marks a pending election complete, does nothing, or decides
// and executes a promotion — synchronously, so tests driving ProbeOnce
// see deterministic outcomes and a router restarted onto a pending
// journal resumes it before serving.
func (el *elector) observe(v view) {
	rt := el.rt
	el.mu.Lock()
	if el.busy {
		el.mu.Unlock()
		return
	}

	// A resolved primary settles any pending election: completed when it
	// leads a higher epoch than the one the decision superseded,
	// abandoned when the old primary recovered first.
	if v.primary != nil {
		if el.rec != nil && !el.rec.Done {
			rec := *el.rec
			rec.Done = true
			if err := saveElection(el.fs, el.dir, rec); err != nil {
				el.mu.Unlock()
				rt.logf("router: closing election journal entry: %v", err)
				return
			}
			el.rec = &rec
			el.mu.Unlock()
			if v.primary.epoch > rec.Epoch {
				rt.logf("router: election seq=%d complete: %s is primary at epoch %d",
					rec.Seq, v.primary.b.base.Host, v.primary.epoch)
			} else {
				rt.logf("router: election seq=%d abandoned: primary %s recovered at epoch %d",
					rec.Seq, v.primary.b.base.Host, v.primary.epoch)
			}
			return
		}
		el.mu.Unlock()
		return
	}

	decision, ok := el.decideLocked()
	if !ok {
		el.mu.Unlock()
		return
	}
	// Journal the decision durably BEFORE the promote goes out: a crash
	// from here on resumes this exact election instead of opening a new
	// one against a different candidate.
	if el.rec == nil || decision.Seq != el.rec.Seq {
		if err := saveElection(el.fs, el.dir, decision); err != nil {
			el.mu.Unlock()
			rt.logf("router: journaling election: %v", err)
			return
		}
		rec := decision
		el.rec = &rec
		rt.logf("router: election seq=%d: promoting %s (superseding epoch %d, quorum ok)",
			decision.Seq, decision.Candidate, decision.Epoch)
	}
	el.busy = true
	el.mu.Unlock()

	err := el.promote(decision)
	el.mu.Lock()
	el.busy = false
	if err == nil {
		el.elections++
	}
	el.mu.Unlock()
	if err != nil {
		rt.logf("router: promote %s failed (will retry next round): %v", decision.Candidate, err)
	} else {
		rt.logf("router: promote accepted by %s", decision.Candidate)
	}
}

func seqOf(rec *electionRecord) uint64 {
	if rec == nil {
		return 0
	}
	return rec.Seq
}

// decideLocked evaluates the election preconditions against the latest
// probed state and, when they all hold, returns the journal record to
// act on. Preconditions, in order:
//
//  1. Quorum: a strict majority of the configured backends answered
//     their last probe. A router isolated with a minority cannot tell a
//     dead primary from its own partition, so it must not promote.
//  2. No uncertainty: every unreachable backend is *confirmed* down by
//     the failure detector (FailureThreshold consecutive failures over
//     at least SuspicionWindow). One dropped probe never cuts over.
//  3. A viable candidate exists: a healthy, non-fenced follower —
//     highest durable epoch first, then smallest replication staleness,
//     then lowest host for determinism.
//
// A pending journal entry pins the choice: the same candidate is
// re-issued (the promote is idempotent) unless that candidate is itself
// confirmed down, in which case a successor election opens at the next
// sequence number.
func (el *elector) decideLocked() (electionRecord, bool) {
	rt := el.rt
	now := time.Now()
	k, window := rt.cfg.FailureThreshold, rt.cfg.SuspicionWindow

	snaps := make([]snapshot, 0, len(rt.backends))
	healthy := 0
	var maxEpoch uint64
	for _, b := range rt.backends {
		s := b.snapshot()
		snaps = append(snaps, s)
		if s.healthy {
			healthy++
		} else if !s.confirmedDown(now, k, window) {
			// Evidence still accumulating; wait for the detector.
			return electionRecord{}, false
		}
		if s.epoch > maxEpoch {
			maxEpoch = s.epoch
		}
	}
	if healthy < len(rt.backends)/2+1 {
		return electionRecord{}, false
	}

	var cand *snapshot
	for i := range snaps {
		s := &snaps[i]
		if !s.healthy || s.fenced || s.role != "follower" {
			continue
		}
		if cand == nil || s.epoch > cand.epoch ||
			(s.epoch == cand.epoch && s.seconds < cand.seconds) ||
			(s.epoch == cand.epoch && s.seconds == cand.seconds && s.b.base.Host < cand.b.base.Host) {
			cand = s
		}
	}

	if el.rec != nil && !el.rec.Done {
		// Resume the journaled election unless its candidate is gone.
		for i := range snaps {
			if snaps[i].b.base.Host == el.rec.Candidate {
				if snaps[i].confirmedDown(now, k, window) {
					break // candidate died; open a successor election
				}
				return *el.rec, true
			}
		}
	}
	if cand == nil {
		return electionRecord{}, false
	}
	if maxEpoch < el.rec.epochFloor() {
		maxEpoch = el.rec.epochFloor()
	}
	return electionRecord{
		Seq:       seqOf(el.rec) + 1,
		Epoch:     maxEpoch,
		Candidate: cand.b.base.Host,
		Listen:    cand.promoteListen,
	}, true
}

// epochFloor keeps a successor election's superseded epoch monotonic
// even if probes have not yet observed the epoch a prior election
// reached.
func (rec *electionRecord) epochFloor() uint64 {
	if rec == nil {
		return 0
	}
	return rec.Epoch
}

// promote issues POST /promote to the journaled candidate. The request
// is idempotent from the router's point of view: a node that is already
// primary answers 409, which the caller treats as "settled — let the
// probes confirm", and a transport error is retried on the next probe
// round against the same journal entry.
func (el *elector) promote(rec electionRecord) error {
	var target *backend
	for _, b := range el.rt.backends {
		if b.base.Host == rec.Candidate {
			target = b
			break
		}
	}
	if target == nil {
		return fmt.Errorf("candidate %s not in backend set", rec.Candidate)
	}
	body, err := json.Marshal(struct {
		Listen string `json:"listen"`
	}{rec.Listen})
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, target.base.String()+"/promote", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	ctx, cancel := contextWithTimeout(req.Context(), el.rt.cfg.PromoteTimeout)
	defer cancel()
	resp, err := el.rt.client.Do(req.WithContext(ctx))
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		// Already promoted (an earlier attempt landed) or no longer a
		// replica; either way the probes will resolve the truth.
		return nil
	default:
		return fmt.Errorf("candidate %s answered %d to promote", rec.Candidate, resp.StatusCode)
	}
}
