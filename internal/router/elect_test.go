package router

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ddgms/ddgms/internal/faultfs"
	"github.com/ddgms/ddgms/internal/repl"
)

// setFollowerListen is setFollower plus an advertised promote listener,
// which is what marks the stub as a viable promotion candidate.
func (s *stub) setFollowerListen(epoch uint64, seconds float64, listen string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hasRepl = true
	s.st = repl.Status{
		Role: "follower", Epoch: epoch, SecondsSinceFrame: seconds,
		Connected: true, PromoteListen: listen,
	}
}

// armPromote wires the stub's POST /promote to behave like a real node:
// it flips the stub to primary at epoch+1 and records the listen field
// it was sent. Subsequent promotes answer 409, like core does for a
// node that is no longer a replica.
func (s *stub) armPromote(t *testing.T) *promoteLog {
	t.Helper()
	pl := &promoteLog{}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onPromote = func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Listen string `json:"listen"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		s.mu.Lock()
		already := s.st.Role == "primary"
		if !already {
			s.st = repl.Status{Role: "primary", Epoch: s.st.Epoch + 1, Addr: "127.0.0.1:0"}
		}
		s.mu.Unlock()
		pl.mu.Lock()
		pl.listens = append(pl.listens, req.Listen)
		pl.mu.Unlock()
		if already {
			http.Error(w, `{"error":"not a replica"}`, http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusOK)
	}
	return pl
}

type promoteLog struct {
	mu      sync.Mutex
	listens []string
}

func (pl *promoteLog) count() int {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return len(pl.listens)
}

// newAutoRouter fronts the stubs with the elector armed and a detector
// tuned so two forced probe rounds a few milliseconds apart confirm a
// dead backend.
func newAutoRouter(t *testing.T, dir string, stubs ...*stub) *Router {
	t.Helper()
	urls := make([]string, 0, len(stubs))
	for _, s := range stubs {
		urls = append(urls, s.srv.URL)
	}
	rt, err := New(Config{
		Backends:         urls,
		PollEvery:        time.Hour, // tests drive rounds via ProbeOnce
		MaxStaleness:     5 * time.Second,
		AutoFailover:     true,
		ElectionDir:      dir,
		FailureThreshold: 2,
		SuspicionWindow:  time.Millisecond,
		PromoteTimeout:   2 * time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt
}

// confirmDead runs forced probe rounds until the failure detector's
// threshold and window are both satisfied for already-dead backends.
func confirmDead(rt *Router, rounds int) {
	for i := 0; i < rounds; i++ {
		time.Sleep(3 * time.Millisecond)
		rt.ProbeOnce()
	}
}

func TestAutoFailoverPromotesBestFollower(t *testing.T) {
	p, f1, f2 := newStub(t, "p"), newStub(t, "f1"), newStub(t, "f2")
	p.setPrimary(1, false)
	f1.setFollowerListen(1, 4.0, "127.0.0.1:7001") // laggier
	f2.setFollowerListen(1, 0.1, "127.0.0.1:7002") // freshest: the candidate
	pl1, pl2 := f1.armPromote(t), f2.armPromote(t)
	rt := newAutoRouter(t, t.TempDir(), p, f1, f2)

	p.srv.Close() // primary dies
	confirmDead(rt, 3)

	if got := pl2.count(); got != 1 {
		t.Fatalf("freshest follower got %d promotes, want exactly 1", got)
	}
	if got := pl1.count(); got != 0 {
		t.Fatalf("laggier follower got %d promotes, want 0", got)
	}
	pl2.mu.Lock()
	listen := pl2.listens[0]
	pl2.mu.Unlock()
	if listen != "127.0.0.1:7002" {
		t.Fatalf("promote sent listen %q, want the advertised promote listener", listen)
	}

	// Extra rounds must not promote again: the journal entry completes
	// once the probes resolve the new primary.
	confirmDead(rt, 3)
	if got := pl2.count() + pl1.count(); got != 1 {
		t.Fatalf("%d total promotes after extra rounds, want 1", got)
	}
	cs := rt.Cluster()
	if cs.Epoch != 2 || !strings.Contains(cs.Primary, f2.srv.URL) {
		t.Fatalf("cluster after election = primary %q epoch %d, want %q epoch 2", cs.Primary, cs.Epoch, f2.srv.URL)
	}
	if !cs.AutoFailover || cs.Elections != 1 {
		t.Fatalf("auto_failover=%v elections=%d, want true/1", cs.AutoFailover, cs.Elections)
	}
	if cs.Election == nil || !cs.Election.Done || cs.Election.Seq != 1 {
		t.Fatalf("election status = %+v, want done seq 1", cs.Election)
	}
}

func TestAutoFailoverPrefersHigherEpochOverLowerLag(t *testing.T) {
	p, f1, f2 := newStub(t, "p"), newStub(t, "f1"), newStub(t, "f2")
	p.setPrimary(2, false)
	f1.setFollowerListen(2, 0.0, "127.0.0.1:7001") // fresher but older epoch
	f2.setFollowerListen(3, 9.0, "127.0.0.1:7002") // higher durable epoch wins
	pl1, pl2 := f1.armPromote(t), f2.armPromote(t)
	rt := newAutoRouter(t, t.TempDir(), p, f1, f2)

	p.srv.Close()
	confirmDead(rt, 3)
	if pl2.count() != 1 || pl1.count() != 0 {
		t.Fatalf("promotes = f1:%d f2:%d, want the higher-epoch follower only", pl1.count(), pl2.count())
	}
}

func TestAutoFailoverRefusesWithoutQuorum(t *testing.T) {
	p, f1, f2 := newStub(t, "p"), newStub(t, "f1"), newStub(t, "f2")
	p.setPrimary(1, false)
	f1.setFollowerListen(1, 0, "127.0.0.1:7001")
	f2.setFollowerListen(1, 0, "127.0.0.1:7002")
	pl1 := f1.armPromote(t)
	rt := newAutoRouter(t, t.TempDir(), p, f1, f2)

	// Two of three backends unreachable: the router may itself be the
	// partitioned minority, so it must not promote the one follower it
	// can still see — even after the detector confirms both dead.
	p.srv.Close()
	f2.srv.Close()
	confirmDead(rt, 4)
	if got := pl1.count(); got != 0 {
		t.Fatalf("follower promoted %d times without quorum, want 0", got)
	}
	if cs := rt.Cluster(); cs.Elections != 0 || cs.Election != nil {
		t.Fatalf("election ran without quorum: %+v", cs)
	}
}

func TestAutoFailoverWaitsForDetectorConfirmation(t *testing.T) {
	p, f1, f2 := newStub(t, "p"), newStub(t, "f1"), newStub(t, "f2")
	p.setPrimary(1, false)
	f1.setFollowerListen(1, 0, "127.0.0.1:7001")
	f2.setFollowerListen(1, 0, "127.0.0.1:7002")
	pl1, pl2 := f1.armPromote(t), f2.armPromote(t)
	rt := newAutoRouter(t, t.TempDir(), p, f1, f2)

	// One dropped probe is suspicion, not confirmation: with
	// FailureThreshold 2, a single failed round must not cut over.
	p.srv.Close()
	rt.ProbeOnce()
	if got := pl1.count() + pl2.count(); got != 0 {
		t.Fatalf("promoted after a single failed probe, want 0 promotes (got %d)", got)
	}
}

func TestAutoFailoverResumesJournaledElection(t *testing.T) {
	dir := t.TempDir()
	p, f1, f2 := newStub(t, "p"), newStub(t, "f1"), newStub(t, "f2")
	p.setPrimary(1, false)
	f1.setFollowerListen(1, 5.0, "127.0.0.1:7001") // journaled candidate (laggier)
	f2.setFollowerListen(1, 0.0, "127.0.0.1:7002") // what a fresh election would pick
	pl1, pl2 := f1.armPromote(t), f2.armPromote(t)

	// A previous router instance decided for f1 and crashed before (or
	// during) the promote. The journal pins that choice.
	host := strings.TrimPrefix(f1.srv.URL, "http://")
	rec := electionRecord{Seq: 5, Epoch: 1, Candidate: host, Listen: "127.0.0.1:7001"}
	if err := saveElection(faultfs.OS{}, dir, rec); err != nil {
		t.Fatalf("pre-writing journal: %v", err)
	}

	p.srv.Close()
	rt := newAutoRouter(t, dir, p, f1, f2)
	confirmDead(rt, 3)

	if pl1.count() != 1 || pl2.count() != 0 {
		t.Fatalf("promotes = f1:%d f2:%d, want the journaled candidate re-issued exactly once", pl1.count(), pl2.count())
	}
	cs := rt.Cluster()
	if cs.Election == nil || cs.Election.Seq != 5 {
		t.Fatalf("resumed election seq = %+v, want 5 (no new election opened)", cs.Election)
	}
}

func TestAutoFailoverOpensSuccessorElectionWhenCandidateDies(t *testing.T) {
	// A journal names a candidate that died before the promote landed.
	// With quorum still held by the two other nodes (both demoted
	// followers — the cluster has no primary), the elector must abandon
	// the pinned choice and open a successor election at seq+1 against
	// the best surviving follower.
	p2, f3, f4 := newStub(t, "p2"), newStub(t, "f3"), newStub(t, "f4")
	p2.setFollowerListen(1, 0, "127.0.0.1:7003") // ex-primary already demoted
	f3.setFollowerListen(1, 0, "127.0.0.1:7004")
	f4.setFollowerListen(1, 2.0, "127.0.0.1:7005")
	plp, pl3, pl4 := p2.armPromote(t), f3.armPromote(t), f4.armPromote(t)

	dir2 := t.TempDir()
	host3 := strings.TrimPrefix(f3.srv.URL, "http://")
	rec2 := electionRecord{Seq: 3, Epoch: 1, Candidate: host3, Listen: "127.0.0.1:7004"}
	if err := saveElection(faultfs.OS{}, dir2, rec2); err != nil {
		t.Fatalf("pre-writing journal: %v", err)
	}
	f3.srv.Close() // the journaled candidate is the one that died
	rt2 := newAutoRouter(t, dir2, p2, f3, f4)
	confirmDead(rt2, 4)

	if pl3.count() != 0 {
		t.Fatalf("dead candidate got %d promotes", pl3.count())
	}
	if got := plp.count() + pl4.count(); got != 1 {
		t.Fatalf("successor election issued %d promotes, want exactly 1", got)
	}
	cs := rt2.Cluster()
	if cs.Election == nil || cs.Election.Seq != 4 {
		t.Fatalf("successor election seq = %+v, want 4 (journaled 3 + 1)", cs.Election)
	}
}

func TestElectionJournalCrashSweep(t *testing.T) {
	// Measure the injection-point space of one save.
	scratch := t.TempDir()
	counter := faultfs.NewFault(faultfs.OS{})
	next := electionRecord{Seq: 2, Epoch: 3, Candidate: "b:1", Listen: "127.0.0.1:2", Done: false}
	if err := saveElection(counter, scratch, next); err != nil {
		t.Fatalf("counting save: %v", err)
	}
	total := counter.Ops()
	if total < 5 {
		t.Fatalf("save spans %d ops, expected at least create/write/sync/close/rename", total)
	}

	prev := electionRecord{Seq: 1, Epoch: 2, Candidate: "a:1", Listen: "127.0.0.1:1", Done: true}
	for n := 1; n <= total; n++ {
		for _, frac := range []float64{0, 0.5, 1} {
			dir := t.TempDir()
			if err := saveElection(faultfs.OS{}, dir, prev); err != nil {
				t.Fatalf("seeding journal: %v", err)
			}
			fault := faultfs.NewFault(faultfs.OS{}).CrashAt(n, frac)
			if err := saveElection(fault, dir, next); err == nil {
				t.Fatalf("crash at op %d frac %.1f: save unexpectedly succeeded", n, frac)
			}
			// The reopened router must find either the old complete record
			// or the new one — never garbage, never a regression.
			rec, ok, err := loadElection(faultfs.OS{}, dir)
			if err != nil {
				t.Fatalf("crash at op %d frac %.1f: reload errored: %v", n, frac, err)
			}
			if !ok {
				t.Fatalf("crash at op %d frac %.1f: journal vanished", n, frac)
			}
			if rec != prev && rec != next {
				t.Fatalf("crash at op %d frac %.1f: loaded %+v, want old or new record", n, frac, rec)
			}
			if rec.Seq < prev.Seq {
				t.Fatalf("crash at op %d frac %.1f: seq regressed to %d", n, frac, rec.Seq)
			}
		}
	}

	// First-ever save: a torn journal must read as "no election", not an
	// error, so a brand-new router can still come up.
	for n := 1; n <= total; n++ {
		dir := t.TempDir()
		fault := faultfs.NewFault(faultfs.OS{}).CrashAt(n, 0.5)
		if err := saveElection(fault, dir, prev); err == nil {
			t.Fatalf("first-save crash at op %d: save unexpectedly succeeded", n)
		}
		rec, ok, err := loadElection(faultfs.OS{}, dir)
		if err != nil {
			t.Fatalf("first-save crash at op %d: reload errored: %v", n, err)
		}
		if ok && rec != prev {
			t.Fatalf("first-save crash at op %d: loaded garbage %+v", n, rec)
		}
	}
}

func TestIdempotentReadClassification(t *testing.T) {
	cases := []struct {
		method, path string
		want         bool
	}{
		{http.MethodGet, "/freshness", true},
		{http.MethodGet, "/findings", true},
		{http.MethodPost, "/query", true},
		{http.MethodPost, "/sql", true},
		{http.MethodPost, "/flatquery", true},
		{http.MethodPost, "/findings", false},
		{http.MethodPost, "/findings/reinforce", false},
		{http.MethodPost, "/anything-future", false},
		{http.MethodDelete, "/query", false},
	}
	for _, c := range cases {
		if got := idempotentRead(c.method, c.path); got != c.want {
			t.Errorf("idempotentRead(%s %s) = %v, want %v", c.method, c.path, got, c.want)
		}
	}
}

func TestIdempotentReadReplaysNonIdempotentDoesNot(t *testing.T) {
	// An idempotent read whose first attempt dies mid-flight is replayed
	// against the next candidate and succeeds.
	p, f := newStub(t, "p"), newStub(t, "f")
	p.setPrimary(1, false)
	f.setFollower(1, 0)
	f.mu.Lock()
	f.killNext["/query"] = 1
	f.mu.Unlock()
	rt := newRouter(t, p, f)

	rec, e := do(t, rt, http.MethodPost, "/query", `{"agg":"count"}`)
	if rec.Code != http.StatusOK || e.ServedBy != "p" {
		t.Fatalf("idempotent retry: code=%d served_by=%q, want 200 from p", rec.Code, e.ServedBy)
	}
	if got := f.count("POST /query"); got != 1 {
		t.Fatalf("killed follower hit %d times, want 1", got)
	}

	// A non-idempotent POST reaching the read path gets exactly one
	// attempt: its first try died with unknown effect, so replaying it
	// against another backend could double-apply.
	p2, f2 := newStub(t, "p2"), newStub(t, "f2")
	p2.setPrimary(1, false)
	f2.setFollower(1, 0)
	f2.mu.Lock()
	f2.killNext["/findings"] = 1
	f2.mu.Unlock()
	rt2 := newRouter(t, p2, f2)

	req := httptest.NewRequest(http.MethodPost, "/findings", strings.NewReader(`{"x":1}`))
	w := httptest.NewRecorder()
	rt2.proxyRead(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("non-idempotent read after transport death: code=%d, want 503 shed", w.Code)
	}
	if got := f2.count("POST /findings"); got != 1 {
		t.Fatalf("dying backend hit %d times, want 1", got)
	}
	if got := p2.count("POST /findings"); got != 0 {
		t.Fatalf("non-idempotent POST replayed to %d other backends, want 0", got)
	}
}

func TestConfirmedDownRequiresThresholdAndWindow(t *testing.T) {
	now := time.Now()
	base := snapshot{healthy: false, fails: 3, failsSince: now.Add(-2 * time.Second)}

	if !base.confirmedDown(now, 3, time.Second) {
		t.Fatal("3 fails over 2s not confirmed at k=3 window=1s")
	}
	few := base
	few.fails = 2
	if few.confirmedDown(now, 3, time.Second) {
		t.Fatal("2 fails confirmed at k=3")
	}
	young := base
	young.failsSince = now.Add(-100 * time.Millisecond)
	if young.confirmedDown(now, 3, time.Second) {
		t.Fatal("100ms-old streak confirmed at window=1s")
	}
	alive := base
	alive.healthy = true
	if alive.confirmedDown(now, 3, time.Second) {
		t.Fatal("healthy backend confirmed down")
	}
	zero := base
	zero.failsSince = time.Time{}
	if zero.confirmedDown(now, 3, time.Second) {
		t.Fatal("zero failsSince confirmed down")
	}
}

func TestProbeBackoffSkipsDeadBackendThenResets(t *testing.T) {
	s := newStub(t, "s")
	s.setPrimary(1, false)
	rt := newRouter(t, s)

	// Kill the backend and confirm the failure arms a backoff window.
	s.setHealthy(false)
	rt.ProbeOnce()
	healthBefore := s.count("GET /healthz")

	// An unforced round inside the backoff window must skip the backend
	// entirely — this is what keeps a long-dead node from being hammered
	// at full poll cadence.
	rt.probeRound(false)
	if got := s.count("GET /healthz"); got != healthBefore {
		t.Fatalf("backend probed %d extra times inside backoff window", got-healthBefore)
	}

	// A forced round still probes (ProbeOnce is the test/startup path),
	// and a success resets the backoff so the next unforced round probes
	// again immediately.
	s.setHealthy(true)
	rt.ProbeOnce()
	afterForce := s.count("GET /healthz")
	if afterForce != healthBefore+1 {
		t.Fatalf("forced round probed %d times, want 1", afterForce-healthBefore)
	}
	rt.probeRound(false)
	if got := s.count("GET /healthz"); got != afterForce+1 {
		t.Fatalf("post-reset unforced round probed %d times, want 1", got-afterForce)
	}
}

// TestElectionDirRequired pins the config contract: AutoFailover without
// a journal directory must refuse to start rather than run an elector
// that cannot survive a restart.
func TestElectionDirRequired(t *testing.T) {
	s := newStub(t, "s")
	if _, err := New(Config{Backends: []string{s.srv.URL}, AutoFailover: true}); err == nil {
		t.Fatal("New with AutoFailover and no ElectionDir should fail")
	}
	if _, err := os.Stat(filepath.Join(t.TempDir(), electFile)); !os.IsNotExist(err) {
		t.Fatal("sanity: fresh dir should have no journal")
	}
}
