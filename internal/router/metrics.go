package router

import "github.com/ddgms/ddgms/internal/obs"

// Routing-front metric families. The target label is a role
// (primary/follower), never a backend address, so request-counter
// cardinality stays bounded; per-backend gauges use the configured
// backend list, which is fixed for the router's lifetime.
var (
	metricRequests = obs.Default().CounterVec(
		"ddgms_router_requests_total",
		"Requests through the routing front, by class and target role.",
		"class", "target")
	metricSheds = obs.Default().CounterVec(
		"ddgms_router_sheds_total",
		"Requests the router refused or failed itself (502/503), by reason.",
		"reason")
	metricReadRetries = obs.Default().Counter(
		"ddgms_router_read_retries_total",
		"Read requests replayed against another backend after a transport error.")
	metricReadsToPrimary = obs.Default().Counter(
		"ddgms_router_reads_to_primary_total",
		"Reads served by the primary because no follower was fresh enough.")
	metricFailovers = obs.Default().Counter(
		"ddgms_router_failovers_total",
		"Times the resolved primary changed identity.")
	metricPrimaryEpoch = obs.Default().Gauge(
		"ddgms_router_primary_epoch",
		"Epoch of the currently resolved primary (0 when none).")
	metricBackendHealthy = obs.Default().GaugeVec(
		"ddgms_router_backend_healthy",
		"Whether the backend answered its last health probe (1/0).",
		"backend")
	metricBackendEligible = obs.Default().GaugeVec(
		"ddgms_router_backend_read_eligible",
		"Whether the backend is currently eligible for balanced reads (1/0).",
		"backend")

	shedNoPrimary  = metricSheds.WithLabelValues("no_primary")
	shedNoBackend  = metricSheds.WithLabelValues("no_backend")
	shedProxyError = metricSheds.WithLabelValues("proxy_error")
)
