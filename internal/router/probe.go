package router

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"

	"github.com/ddgms/ddgms/internal/repl"
)

// backend is one node behind the routing front, with the state the
// prober last observed for it. The configured set is fixed for the
// router's lifetime; only the observed state changes.
type backend struct {
	base *url.URL

	mu       sync.Mutex
	healthy  bool
	role     string // "primary", "follower", "standalone" (no /replication), "" before first probe
	epoch    uint64
	fenced   bool
	seconds  float64 // follower SecondsSinceFrame at probe time
	probedAt time.Time
	lastErr  string

	// promoteListen is the replication listener address the node would
	// bind if promoted (repl.Status.PromoteListen); the elector passes it
	// back on POST /promote.
	promoteListen string

	// Failure-detector accounting: consecutive failed observations
	// (probe or live proxy path) and when the current streak began. A
	// backend is only *confirmed* down — the precondition for electing a
	// successor — once the streak is both deep (FailureThreshold) and
	// old (SuspicionWindow), so one dropped packet never triggers a
	// cutover.
	fails      int
	failsSince time.Time

	// Probe backoff for persistently failing backends: the current
	// delay (0 = probe every tick) and the earliest next probe instant.
	backoff   time.Duration
	nextProbe time.Time
}

// snapshot is a consistent copy of one backend's probed state.
type snapshot struct {
	b             *backend
	healthy       bool
	role          string
	epoch         uint64
	fenced        bool
	seconds       float64
	probedAt      time.Time
	lastErr       string
	promoteListen string
	fails         int
	failsSince    time.Time
}

func (b *backend) snapshot() snapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return snapshot{
		b: b, healthy: b.healthy, role: b.role, epoch: b.epoch,
		fenced: b.fenced, seconds: b.seconds, probedAt: b.probedAt,
		lastErr: b.lastErr, promoteListen: b.promoteListen,
		fails: b.fails, failsSince: b.failsSince,
	}
}

// markUnhealthy records a transport failure observed on the live proxy
// path — faster than waiting for the next poll tick, so one dead
// backend costs one request, not PollEvery's worth of them. Live-path
// evidence feeds the same failure-streak accounting as probes, so real
// traffic accelerates (but cannot by itself shortcut) confirmation.
func (b *backend) markUnhealthy(err error) {
	b.mu.Lock()
	b.healthy = false
	b.lastErr = err.Error()
	b.noteFailureLocked(time.Now())
	b.mu.Unlock()
	metricBackendHealthy.WithLabelValues(b.base.Host).Set(0)
}

// noteFailureLocked extends the consecutive-failure streak.
func (b *backend) noteFailureLocked(now time.Time) {
	b.fails++
	if b.fails == 1 {
		b.failsSince = now
	}
}

// confirmedDown reports whether the failure detector considers this
// backend dead: at least k consecutive failed observations AND a streak
// at least window old. Both axes must agree — k guards against a single
// dropped packet, the window against a burst of instant retries.
func (s snapshot) confirmedDown(now time.Time, k int, window time.Duration) bool {
	return !s.healthy && s.fails >= k &&
		!s.failsSince.IsZero() && now.Sub(s.failsSince) >= window
}

// staleness is the follower's effective read staleness bound at time
// now: what the node itself reported, plus however long ago we probed
// it (the primary may have committed the whole time since).
func (s snapshot) staleness(now time.Time) float64 {
	age := now.Sub(s.probedAt).Seconds()
	if age < 0 {
		age = 0
	}
	return s.seconds + age
}

// probe refreshes one backend's state: /healthz?deep=1 for liveness and
// readiness, /replication for role, epoch and lag. A node without
// replication attached (404) is "standalone" — a single-node deployment
// fronted by the router is still routable.
func (rt *Router) probe(b *backend) {
	healthy := false
	role := "standalone"
	var epoch uint64
	var fenced bool
	var seconds float64
	var lastErr string
	var promoteListen string

	if err := rt.probeGet(b, "/healthz?deep=1", nil); err != nil {
		lastErr = err.Error()
	} else {
		healthy = true
		var st repl.Status
		err := rt.probeGet(b, "/replication", &st)
		switch {
		case err == nil:
			role = st.Role
			epoch = st.Epoch
			fenced = st.Fenced
			seconds = st.SecondsSinceFrame
			promoteListen = st.PromoteListen
		case err == errNoReplication:
			// standalone stays
		default:
			healthy = false
			lastErr = err.Error()
		}
	}

	now := time.Now()
	b.mu.Lock()
	b.healthy = healthy
	b.role = role
	b.epoch = epoch
	b.fenced = fenced
	b.seconds = seconds
	b.probedAt = now
	b.lastErr = lastErr
	b.promoteListen = promoteListen
	if healthy {
		// First success resets both the failure streak and the probe
		// backoff: a recovered backend is re-probed at full cadence.
		b.fails = 0
		b.failsSince = time.Time{}
		b.backoff = 0
		b.nextProbe = time.Time{}
	} else {
		b.noteFailureLocked(now)
		b.bumpBackoffLocked(now, rt.cfg.PollEvery, rt.cfg.ProbeBackoffMax)
	}
	b.mu.Unlock()
	if healthy {
		metricBackendHealthy.WithLabelValues(b.base.Host).Set(1)
	} else {
		metricBackendHealthy.WithLabelValues(b.base.Host).Set(0)
	}
}

// bumpBackoffLocked doubles the probe backoff (starting from the poll
// interval) up to cap, then schedules the next probe with up to 25%
// added jitter so a fleet of routers does not hammer a dead backend in
// lockstep.
func (b *backend) bumpBackoffLocked(now time.Time, base, limit time.Duration) {
	if b.backoff == 0 {
		b.backoff = base
	} else {
		b.backoff *= 2
	}
	if b.backoff > limit {
		b.backoff = limit
	}
	jitter := time.Duration(rand.Int63n(int64(b.backoff)/4 + 1))
	b.nextProbe = now.Add(b.backoff + jitter)
}

// probeDue reports whether the backend's backoff allows a probe now.
func (b *backend) probeDue(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nextProbe.IsZero() || !now.Before(b.nextProbe)
}

var errNoReplication = fmt.Errorf("router: backend has no /replication")

// probeGet fetches base+path, optionally decoding a JSON body into out.
func (rt *Router) probeGet(b *backend, path string, out any) error {
	req, err := http.NewRequest(http.MethodGet, b.base.String()+path, nil)
	if err != nil {
		return err
	}
	ctx, cancel := contextWithTimeout(req.Context(), rt.cfg.ProbeTimeout)
	defer cancel()
	resp, err := rt.client.Do(req.WithContext(ctx))
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound {
		return errNoReplication
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("router: %s%s answered %d", b.base.Host, path, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("router: decoding %s%s: %w", b.base.Host, path, err)
		}
	}
	return nil
}

// ProbeOnce synchronously probes every backend (ignoring per-backend
// backoff) and re-resolves the primary. New runs it before returning so
// the router is immediately routable; tests use it to make convergence
// deterministic.
func (rt *Router) ProbeOnce() {
	rt.probeRound(true)
}

// probeRound probes the due backends (all of them when forced) and
// re-resolves.
func (rt *Router) probeRound(force bool) {
	now := time.Now()
	var wg sync.WaitGroup
	for _, b := range rt.backends {
		if !force && !b.probeDue(now) {
			continue
		}
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			rt.probe(b)
		}(b)
	}
	wg.Wait()
	rt.resolve()
}

// probeLoop drives probe rounds at PollEvery until Close. Individual
// backends in failure backoff are skipped until their next-probe
// instant, so a persistently dead node is not hammered every tick.
func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	tick := time.NewTicker(rt.cfg.PollEvery)
	defer tick.Stop()
	for {
		select {
		case <-rt.done:
			return
		case <-tick.C:
			rt.probeRound(false)
		}
	}
}

// view is the routing decision input: the resolved primary (nil when
// none), the cluster epoch, and the read-eligible followers.
type view struct {
	primary *snapshot
	epoch   uint64
	readers []snapshot
}

// currentView computes the cluster view from the latest probed state.
//
// Primary resolution is epoch-driven: among healthy, non-fenced
// backends claiming the primary role, the highest epoch wins — after a
// promotion the new leader's epoch is strictly above the old one's, so
// the router re-resolves without any coordination. A returned stale
// primary still claiming its old epoch loses the comparison and gets no
// traffic, even before it learns it was fenced. A single healthy
// standalone node (no replication attached) acts as its own primary so
// the router can front a one-node deployment.
//
// Read eligibility: healthy followers at the cluster epoch whose
// effective staleness (their own SecondsSinceFrame plus our probe age)
// is within MaxStaleness.
func (rt *Router) currentView() view {
	now := time.Now()
	snaps := make([]snapshot, 0, len(rt.backends))
	for _, b := range rt.backends {
		snaps = append(snaps, b.snapshot())
	}

	var v view
	var standalone *snapshot
	standaloneCount := 0
	for i := range snaps {
		s := &snaps[i]
		if !s.healthy {
			continue
		}
		switch s.role {
		case "primary":
			if s.fenced {
				continue
			}
			if v.primary == nil || s.epoch > v.primary.epoch ||
				(s.epoch == v.primary.epoch && s.b.base.Host < v.primary.b.base.Host) {
				v.primary = s
			}
		case "standalone":
			standalone = s
			standaloneCount++
		}
	}
	if v.primary == nil && standaloneCount == 1 {
		v.primary = standalone
	}
	if v.primary != nil {
		v.epoch = v.primary.epoch
	}

	maxStale := rt.cfg.MaxStaleness.Seconds()
	for i := range snaps {
		s := &snaps[i]
		eligible := s.healthy && s.role == "follower" && s.epoch == v.epoch &&
			v.primary != nil && s.staleness(now) <= maxStale
		if eligible {
			v.readers = append(v.readers, *s)
		}
		val := 0.0
		if eligible {
			val = 1.0
		}
		metricBackendEligible.WithLabelValues(s.b.base.Host).Set(val)
	}
	return v
}

// resolve updates the failover accounting after a probe round: when the
// resolved primary's identity changes, count it and log it. A round
// with no primary at all (the mid-cutover gap) does not clear the
// remembered identity — a kill observed before the promotion must
// still count as one failover once the successor appears, not zero.
func (rt *Router) resolve() {
	v := rt.currentView()
	addr := ""
	if v.primary != nil {
		addr = v.primary.b.base.Host
	}
	rt.mu.Lock()
	prev := rt.lastPrimary
	if addr != prev && addr != "" {
		rt.lastPrimary = addr
		if prev != "" {
			rt.failovers++
			metricFailovers.Inc()
		}
	}
	logged := rt.lastResolved
	rt.lastResolved = addr
	rt.mu.Unlock()
	metricPrimaryEpoch.Set(float64(v.epoch))
	if addr != logged {
		rt.logf("router: primary resolved to %q (epoch %d, was %q)", addr, v.epoch, logged)
	}
	if rt.elect != nil {
		rt.elect.observe(v)
	}
}
