// Package router is the replica-aware routing front: one HTTP address
// that fans a cluster's traffic out by endpoint class. Writes and
// primary-local reads go to the current primary; figure/query reads are
// load-balanced round-robin over followers whose replication staleness
// is inside a configured bound, failing over to the primary when every
// follower is stale.
//
// The router polls each backend's /healthz and /replication and
// resolves the primary by epoch comparison: after a promotion the new
// leader claims a strictly higher epoch, so the router re-homes client
// traffic with no coordination protocol — and a stale ex-primary that
// comes back can never win the comparison, which is the routing half of
// the fencing story. /cluster exposes the resolved view; every refusal
// the router issues itself (502/503 during cutover) carries Retry-After,
// the same backpressure contract the backends use.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/ddgms/ddgms/internal/obs"
)

// Config parameterises the routing front.
type Config struct {
	// Backends are the base URLs of the nodes to front, e.g.
	// "http://10.0.0.1:8360". Required, fixed for the router's lifetime.
	Backends []string
	// PollEvery is the health/replication probe cadence. Default 250ms.
	PollEvery time.Duration
	// MaxStaleness bounds a follower's effective replication staleness
	// (its own seconds-since-frame plus probe age) for balanced reads;
	// staler followers are skipped. Default 5s.
	MaxStaleness time.Duration
	// ProbeTimeout bounds each probe request. Default 2s.
	ProbeTimeout time.Duration
	// MaxBodyBytes caps a buffered (replayable) read body. Default 1MiB,
	// matching the backends' own body cap.
	MaxBodyBytes int64
	// ProbeBackoffMax caps the per-backend exponential probe backoff
	// applied to persistently failing backends. Default 5s.
	ProbeBackoffMax time.Duration

	// AutoFailover enables the quorum-gated elector: when the failure
	// detector confirms the primary dead and a majority of configured
	// backends is reachable, the router promotes the best follower
	// itself. Requires ElectionDir.
	AutoFailover bool
	// FailureThreshold is how many consecutive failed observations
	// (probe or live proxy path) confirm a backend down. Default 3.
	FailureThreshold int
	// SuspicionWindow is how long the failure streak must have lasted
	// before a backend is confirmed down. Default 1s.
	SuspicionWindow time.Duration
	// ElectionDir holds the durable election journal; a router restarted
	// mid-election resumes it instead of double-promoting.
	ElectionDir string
	// PromoteTimeout bounds each POST /promote attempt. Default 3s.
	PromoteTimeout time.Duration

	// Client issues probes and proxied requests; nil builds a pooled
	// default.
	Client *http.Client
	// Log, when set, receives failover and shed lines.
	Log *log.Logger
}

// Router is the http.Handler front.
type Router struct {
	cfg      Config
	client   *http.Client
	backends []*backend

	mu sync.Mutex
	rr uint64 // round-robin cursor over eligible readers
	// lastPrimary is the identity of the last primary ever resolved (it
	// survives no-primary gaps, so a kill->promote sequence counts one
	// failover); lastResolved is the last logged resolution, which does
	// track gaps.
	lastPrimary  string
	lastResolved string
	failovers    uint64

	// elect is the auto-failover state machine (nil unless AutoFailover).
	elect *elector

	done chan struct{}
	wg   sync.WaitGroup
}

// New validates the config, probes every backend once (so the router is
// immediately routable) and starts the poll loop.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("router: at least one backend is required")
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 250 * time.Millisecond
	}
	if cfg.MaxStaleness <= 0 {
		cfg.MaxStaleness = 5 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.ProbeBackoffMax <= 0 {
		cfg.ProbeBackoffMax = 5 * time.Second
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 3
	}
	if cfg.SuspicionWindow <= 0 {
		cfg.SuspicionWindow = time.Second
	}
	if cfg.PromoteTimeout <= 0 {
		cfg.PromoteTimeout = 3 * time.Second
	}
	client := cfg.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = 512
		tr.MaxIdleConnsPerHost = 128
		client = &http.Client{Transport: tr}
	}
	rt := &Router{cfg: cfg, client: client, done: make(chan struct{})}
	seen := map[string]bool{}
	for _, raw := range cfg.Backends {
		u, err := url.Parse(strings.TrimRight(raw, "/"))
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("router: backend %q is not an absolute URL", raw)
		}
		if seen[u.Host] {
			return nil, fmt.Errorf("router: backend %q listed twice", u.Host)
		}
		seen[u.Host] = true
		rt.backends = append(rt.backends, &backend{base: u})
	}
	if cfg.AutoFailover {
		el, err := newElector(rt)
		if err != nil {
			return nil, err
		}
		rt.elect = el
	}
	rt.ProbeOnce()
	rt.wg.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// Close stops the poll loop.
func (rt *Router) Close() error {
	select {
	case <-rt.done:
		return nil
	default:
	}
	close(rt.done)
	rt.wg.Wait()
	return nil
}

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Log != nil {
		rt.cfg.Log.Printf(format, args...)
	}
}

// Request classes. Classification is by (method, path) against the
// backend endpoint set; TestClassificationCoversServerRoutes keeps this
// table from drifting when the backend grows a route.
type class int

const (
	classUnknown class = iota
	// classWrite mutates state: primary only, never retried (the
	// request may not be idempotent).
	classWrite
	// classRead is balanced over fresh followers, falls over to the
	// primary, and may be replayed once after a transport error.
	classRead
	// classPrimaryRead reads state that lives authoritatively on the
	// primary (the findings KB, the replication roster).
	classPrimaryRead
	// classSelf is answered by the router itself.
	classSelf
)

func classify(method, path string) class {
	switch path {
	case "/query", "/sql", "/flatquery":
		if method == http.MethodPost {
			return classRead
		}
	case "/freshness", "/schema", "/healthz":
		if method == http.MethodGet {
			return classRead
		}
	case "/findings":
		switch method {
		case http.MethodPost:
			return classWrite
		case http.MethodGet:
			return classPrimaryRead
		}
	case "/findings/reinforce":
		if method == http.MethodPost {
			return classWrite
		}
	case "/replication":
		if method == http.MethodGet {
			return classPrimaryRead
		}
	case "/cluster", "/metrics", "/routerz":
		if method == http.MethodGet {
			return classSelf
		}
	}
	return classUnknown
}

// Classify reports the routing class label ("write", "read",
// "primary_read", "self", "unknown") for a request. Exported so the
// server package's drift test can assert every registered backend route
// is classified; unknown requests are refused with 404.
func Classify(method, path string) string {
	return classLabel(classify(method, path))
}

func classLabel(c class) string {
	switch c {
	case classWrite:
		return "write"
	case classRead:
		return "read"
	case classPrimaryRead:
		return "primary_read"
	case classSelf:
		return "self"
	default:
		return "unknown"
	}
}

// ServeHTTP classifies and dispatches.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c := classify(r.Method, r.URL.Path)
	switch c {
	case classSelf:
		switch r.URL.Path {
		case "/cluster":
			rt.handleCluster(w, r)
		case "/routerz":
			rt.handleRouterHealth(w, r)
		default:
			metricRequests.WithLabelValues("self", "router").Inc()
			obs.Default().Handler().ServeHTTP(w, r)
		}
	case classWrite, classPrimaryRead:
		rt.proxyPrimary(w, r, c)
	case classRead:
		rt.proxyRead(w, r)
	default:
		metricRequests.WithLabelValues("unknown", "none").Inc()
		rt.writeError(w, http.StatusNotFound, "router: no route for %s %s", r.Method, r.URL.Path)
	}
}

// Retry-After seconds for the router's own refusals. Cutovers resolve
// within a couple of probe intervals, so clients should come back fast.
const (
	retryAfterNoPrimary  = 1
	retryAfterProxyError = 1
	retryAfterNoBackend  = 2
)

type errorBody struct {
	Error string `json:"error"`
}

func (rt *Router) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (rt *Router) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	rt.writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// writeShed answers a routing refusal (primary unresolved, every
// candidate down, proxy failure): same Retry-After contract as the
// backends' own shed paths, so a client herd sees one consistent
// backpressure story end to end.
func (rt *Router) writeShed(w http.ResponseWriter, status, retryAfterSeconds int, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	rt.writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// proxyPrimary routes writes and primary-local reads to the resolved
// primary. No replay: a write may not be idempotent, so a transport
// error sheds 502 (with Retry-After) and the client decides.
func (rt *Router) proxyPrimary(w http.ResponseWriter, r *http.Request, c class) {
	label := classLabel(c)
	v := rt.currentView()
	if v.primary == nil {
		metricRequests.WithLabelValues(label, "none").Inc()
		shedNoPrimary.Inc()
		rt.writeShed(w, http.StatusServiceUnavailable, retryAfterNoPrimary,
			"no primary resolved (cutover in progress?); retry shortly")
		return
	}
	metricRequests.WithLabelValues(label, v.primary.role).Inc()
	if err := rt.forward(w, r, v.primary.b, v.primary.role, nil); err != nil {
		v.primary.b.markUnhealthy(err)
		shedProxyError.Inc()
		rt.logf("router: %s to %s failed: %v", label, v.primary.b.base.Host, err)
		rt.writeShed(w, http.StatusBadGateway, retryAfterProxyError,
			"primary %s unreachable: %v", v.primary.b.base.Host, err)
	}
}

// idempotentRead reports whether a read may be replayed against another
// backend after a transport error. GETs always may; a POST is
// replayable only when it targets one of the fixed read-only query
// endpoints, which execute no writes by construction. Any other POST
// that reaches the read path — say, after a future classification
// change — gets exactly one attempt, so a replayed request can never
// double-apply a mutation whose first attempt died mid-flight with
// unknown effect.
func idempotentRead(method, path string) bool {
	if method == http.MethodGet {
		return true
	}
	if method != http.MethodPost {
		return false
	}
	switch path {
	case "/query", "/sql", "/flatquery":
		return true
	}
	return false
}

// proxyRead balances one read over the eligible followers, falling over
// to the primary when none qualifies. The body is buffered so a
// transport error can replay the request once against the next
// candidate — but only when idempotentRead vouches for it; it is what
// keeps a dying follower from surfacing as client-visible 502s.
func (rt *Router) proxyRead(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Body != nil && r.Body != http.NoBody {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, rt.cfg.MaxBodyBytes+1))
		r.Body.Close()
		if err != nil {
			rt.writeError(w, http.StatusBadRequest, "reading request body: %v", err)
			return
		}
		if int64(len(body)) > rt.cfg.MaxBodyBytes {
			rt.writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", rt.cfg.MaxBodyBytes)
			return
		}
	}

	attempts := 1
	if idempotentRead(r.Method, r.URL.Path) {
		attempts = 2
	}
	tried := map[string]bool{}
	for attempt := 0; attempt < attempts; attempt++ {
		target, role := rt.pickRead(tried)
		if target == nil {
			break
		}
		tried[target.base.Host] = true
		metricRequests.WithLabelValues("read", role).Inc()
		if role == "primary" || role == "standalone" {
			metricReadsToPrimary.Inc()
		}
		err := rt.forward(w, r, target, role, body)
		if err == nil {
			return
		}
		target.markUnhealthy(err)
		rt.logf("router: read to %s failed: %v", target.base.Host, err)
		metricReadRetries.Inc()
	}
	shedNoBackend.Inc()
	rt.writeShed(w, http.StatusServiceUnavailable, retryAfterNoBackend,
		"no backend available for reads; retry shortly")
}

// pickRead chooses the next read target: round-robin over eligible
// followers not yet tried, then the primary as the fallback.
func (rt *Router) pickRead(tried map[string]bool) (*backend, string) {
	v := rt.currentView()
	candidates := make([]snapshot, 0, len(v.readers))
	for _, s := range v.readers {
		if !tried[s.b.base.Host] {
			candidates = append(candidates, s)
		}
	}
	if len(candidates) > 0 {
		rt.mu.Lock()
		i := int(rt.rr % uint64(len(candidates)))
		rt.rr++
		rt.mu.Unlock()
		return candidates[i].b, candidates[i].role
	}
	if v.primary != nil && !tried[v.primary.b.base.Host] {
		return v.primary.b, v.primary.role
	}
	return nil, ""
}

// forward proxies one request to a backend, copying the response
// through verbatim plus X-Ddgms-Backend/-Role headers so clients (and
// the failover bench) can see who served them. A non-nil body replaces
// the request's (already consumed) one. Transport errors after the
// response status is written cannot be retried; they surface as a
// truncated body, exactly as if the client spoke to the backend
// directly.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, b *backend, role string, body []byte) error {
	u := *b.base
	u.Path = r.URL.Path
	u.RawQuery = r.URL.RawQuery
	out := r.Clone(r.Context())
	out.URL = &u
	out.Host = ""
	out.RequestURI = ""
	if body != nil {
		out.Body = io.NopCloser(bytes.NewReader(body))
		out.ContentLength = int64(len(body))
	}
	stripHopByHop(out.Header)
	resp, err := rt.client.Do(out)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		h[k] = vs
	}
	stripHopByHop(h)
	h.Set("X-Ddgms-Backend", b.base.Host)
	h.Set("X-Ddgms-Role", role)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return nil
}

// stripHopByHop removes connection-scoped headers that must not be
// forwarded across the proxy hop.
func stripHopByHop(h http.Header) {
	for _, c := range h.Values("Connection") {
		for _, f := range strings.Split(c, ",") {
			if f = strings.TrimSpace(f); f != "" {
				h.Del(f)
			}
		}
	}
	for _, k := range []string{
		"Connection", "Keep-Alive", "Proxy-Authenticate",
		"Proxy-Authorization", "Proxy-Connection", "Te", "Trailer",
		"Transfer-Encoding", "Upgrade",
	} {
		h.Del(k)
	}
}

// BackendStatus is one backend's row in the /cluster view.
type BackendStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Role is primary, follower, standalone, or "" before the first
	// successful probe.
	Role   string `json:"role,omitempty"`
	Epoch  uint64 `json:"epoch"`
	Fenced bool   `json:"fenced,omitempty"`
	// Stale marks a backend whose epoch is behind the resolved cluster
	// epoch: a not-yet-re-homed follower or a returned old primary.
	Stale bool `json:"stale,omitempty"`
	// ConfirmedDown marks a backend the failure detector has declared
	// dead (FailureThreshold consecutive failures over SuspicionWindow).
	ConfirmedDown bool `json:"confirmed_down,omitempty"`
	// StalenessSeconds is the follower's effective read staleness
	// (reported seconds-since-frame plus probe age).
	StalenessSeconds float64 `json:"staleness_seconds,omitempty"`
	EligibleReads    bool    `json:"eligible_reads"`
	ProbeAgeSeconds  float64 `json:"probe_age_seconds"`
	Error            string  `json:"error,omitempty"`
}

// ClusterStatus is the /cluster endpoint's body.
type ClusterStatus struct {
	// Primary is the resolved primary's backend URL; empty mid-cutover.
	Primary string `json:"primary,omitempty"`
	// Epoch is the resolved cluster epoch (the primary's).
	Epoch uint64 `json:"epoch"`
	// Failovers counts primary identity changes observed by this router.
	Failovers           uint64          `json:"failovers"`
	MaxStalenessSeconds float64         `json:"max_staleness_seconds"`
	Backends            []BackendStatus `json:"backends"`
	// AutoFailover reports whether this router runs the elector.
	AutoFailover bool `json:"auto_failover,omitempty"`
	// Elections counts promotions this router has issued itself.
	Elections uint64 `json:"elections,omitempty"`
	// Election describes the in-flight or last-completed election.
	Election *ElectionStatus `json:"election,omitempty"`
}

// Cluster reports the resolved view (also served on /cluster).
func (rt *Router) Cluster() ClusterStatus {
	now := time.Now()
	v := rt.currentView()
	rt.mu.Lock()
	failovers := rt.failovers
	rt.mu.Unlock()
	cs := ClusterStatus{
		Epoch:               v.epoch,
		Failovers:           failovers,
		MaxStalenessSeconds: rt.cfg.MaxStaleness.Seconds(),
	}
	if v.primary != nil {
		cs.Primary = v.primary.b.base.String()
	}
	eligible := map[string]bool{}
	for _, s := range v.readers {
		eligible[s.b.base.Host] = true
	}
	for _, b := range rt.backends {
		s := b.snapshot()
		bs := BackendStatus{
			URL:           b.base.String(),
			Healthy:       s.healthy,
			Role:          s.role,
			Epoch:         s.epoch,
			Fenced:        s.fenced,
			Stale:         s.healthy && s.epoch < v.epoch,
			ConfirmedDown: s.confirmedDown(now, rt.cfg.FailureThreshold, rt.cfg.SuspicionWindow),
			EligibleReads: eligible[b.base.Host],
			Error:         s.lastErr,
		}
		if s.role == "follower" {
			bs.StalenessSeconds = s.staleness(now)
		}
		if !s.probedAt.IsZero() {
			bs.ProbeAgeSeconds = now.Sub(s.probedAt).Seconds()
		}
		cs.Backends = append(cs.Backends, bs)
	}
	if rt.elect != nil {
		cs.AutoFailover = true
		cs.Elections, cs.Election = rt.elect.status()
	}
	return cs
}

func (rt *Router) handleCluster(w http.ResponseWriter, _ *http.Request) {
	metricRequests.WithLabelValues("self", "router").Inc()
	rt.writeJSON(w, http.StatusOK, rt.Cluster())
}

// handleRouterHealth (/routerz) is the router's own liveness for load
// balancers: 200 while a primary is resolved, 503 (with Retry-After)
// mid-cutover. Reads may still be flowing either way; the signal is
// about full-service availability.
func (rt *Router) handleRouterHealth(w http.ResponseWriter, _ *http.Request) {
	metricRequests.WithLabelValues("self", "router").Inc()
	v := rt.currentView()
	if v.primary == nil {
		rt.writeShed(w, http.StatusServiceUnavailable, retryAfterNoPrimary, "no primary resolved")
		return
	}
	rt.writeJSON(w, http.StatusOK, struct {
		Status  string `json:"status"`
		Primary string `json:"primary"`
		Epoch   uint64 `json:"epoch"`
	}{"ok", v.primary.b.base.String(), v.epoch})
}

func contextWithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return parent, func() {}
	}
	return context.WithTimeout(parent, d)
}
