package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ddgms/ddgms/internal/repl"
)

// stub is a fake cluster node: /healthz and /replication answer from
// configurable state, every other path echoes which stub served it.
type stub struct {
	name string
	srv  *httptest.Server

	mu      sync.Mutex
	healthy bool
	hasRepl bool
	st      repl.Status
	hits    map[string]int
	// killNext[path] > 0 makes the next request to path die mid-flight
	// (hijacked connection closed before any response bytes), simulating
	// a backend crash with the request's effect unknown.
	killNext map[string]int
	// onPromote, when set, handles POST /promote (see elect_test).
	onPromote func(w http.ResponseWriter, r *http.Request)
}

func newStub(t *testing.T, name string) *stub {
	t.Helper()
	s := &stub{name: name, healthy: true, hits: map[string]int{}, killNext: map[string]int{}}
	s.srv = httptest.NewServer(http.HandlerFunc(s.handler))
	t.Cleanup(s.srv.Close)
	return s
}

func (s *stub) handler(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	healthy, hasRepl, st := s.healthy, s.hasRepl, s.st
	s.hits[r.Method+" "+r.URL.Path]++
	kill := s.killNext[r.URL.Path] > 0
	if kill {
		s.killNext[r.URL.Path]--
	}
	promote := s.onPromote
	s.mu.Unlock()
	if kill {
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
		return
	}
	switch r.URL.Path {
	case "/healthz":
		if !healthy {
			http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	case "/replication":
		if !hasRepl {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(st)
	case "/promote":
		if promote != nil {
			promote(w, r)
			return
		}
		fallthrough
	default:
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{
			"served_by": s.name, "path": r.URL.Path, "body": string(body),
		})
	}
}

func (s *stub) setPrimary(epoch uint64, fenced bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hasRepl = true
	s.st = repl.Status{Role: "primary", Epoch: epoch, Fenced: fenced, Addr: "127.0.0.1:0"}
}

func (s *stub) setFollower(epoch uint64, seconds float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hasRepl = true
	s.st = repl.Status{Role: "follower", Epoch: epoch, SecondsSinceFrame: seconds, Connected: true}
}

func (s *stub) setHealthy(ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.healthy = ok
}

func (s *stub) count(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits[key]
}

// newRouter fronts the stubs with an effectively-manual probe cadence:
// tests drive convergence with ProbeOnce so nothing depends on timing.
func newRouter(t *testing.T, stubs ...*stub) *Router {
	t.Helper()
	urls := make([]string, 0, len(stubs))
	for _, s := range stubs {
		urls = append(urls, s.srv.URL)
	}
	rt, err := New(Config{
		Backends:     urls,
		PollEvery:    time.Hour,
		MaxStaleness: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt
}

type echo struct {
	ServedBy string `json:"served_by"`
	Path     string `json:"path"`
	Body     string `json:"body"`
}

func do(t *testing.T, rt *Router, method, path, body string) (*httptest.ResponseRecorder, echo) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	var e echo
	if rec.Code == http.StatusOK {
		json.Unmarshal(rec.Body.Bytes(), &e)
	}
	return rec, e
}

func TestWritesRouteToPrimaryReadsBalanceOverFollowers(t *testing.T) {
	p, f1, f2 := newStub(t, "p"), newStub(t, "f1"), newStub(t, "f2")
	p.setPrimary(1, false)
	f1.setFollower(1, 0)
	f2.setFollower(1, 0)
	rt := newRouter(t, p, f1, f2)

	for i := 0; i < 4; i++ {
		rec, e := do(t, rt, http.MethodPost, "/findings", `{"x":1}`)
		if rec.Code != http.StatusOK || e.ServedBy != "p" {
			t.Fatalf("write %d: code=%d served_by=%q, want primary", i, rec.Code, e.ServedBy)
		}
		if role := rec.Header().Get("X-Ddgms-Role"); role != "primary" {
			t.Fatalf("write role header = %q, want primary", role)
		}
	}
	served := map[string]int{}
	for i := 0; i < 10; i++ {
		rec, e := do(t, rt, http.MethodPost, "/query", `{"agg":"count"}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("read %d: code=%d body=%s", i, rec.Code, rec.Body)
		}
		if e.Body != `{"agg":"count"}` {
			t.Fatalf("read %d: body not forwarded, got %q", i, e.Body)
		}
		served[e.ServedBy]++
	}
	if served["f1"] == 0 || served["f2"] == 0 {
		t.Fatalf("reads not balanced over followers: %v", served)
	}
	if served["p"] != 0 {
		t.Fatalf("reads leaked to primary while followers fresh: %v", served)
	}
}

func TestStaleFollowersSkippedThenReadsFailOverToPrimary(t *testing.T) {
	p, f1, f2 := newStub(t, "p"), newStub(t, "f1"), newStub(t, "f2")
	p.setPrimary(3, false)
	f1.setFollower(3, 0)
	f2.setFollower(3, 120) // stale beyond MaxStaleness
	rt := newRouter(t, p, f1, f2)

	for i := 0; i < 6; i++ {
		rec, e := do(t, rt, http.MethodPost, "/query", `{}`)
		if rec.Code != http.StatusOK || e.ServedBy != "f1" {
			t.Fatalf("read %d: code=%d served_by=%q, want f1 only", i, rec.Code, e.ServedBy)
		}
	}

	// Every follower stale: reads must fall over to the primary rather
	// than fail.
	f1.setFollower(3, 120)
	rt.ProbeOnce()
	rec, e := do(t, rt, http.MethodPost, "/query", `{}`)
	if rec.Code != http.StatusOK || e.ServedBy != "p" {
		t.Fatalf("stale-cluster read: code=%d served_by=%q, want primary", rec.Code, e.ServedBy)
	}
	if rec.Header().Get("X-Ddgms-Role") != "primary" {
		t.Fatalf("stale-cluster read role = %q, want primary", rec.Header().Get("X-Ddgms-Role"))
	}
}

func TestEpochResolutionAfterPromotion(t *testing.T) {
	a, b := newStub(t, "a"), newStub(t, "b")
	a.setPrimary(1, false)
	b.setFollower(1, 0)
	rt := newRouter(t, a, b)

	if _, e := do(t, rt, http.MethodPost, "/findings", `{}`); e.ServedBy != "a" {
		t.Fatalf("pre-promotion write served by %q, want a", e.ServedBy)
	}

	// b promotes to epoch 2; a comes back still claiming primary at
	// epoch 1 (a stale ex-primary that has not yet learned it was
	// fenced). The higher epoch must win, and a must get no writes.
	b.setPrimary(2, false)
	rt.ProbeOnce()
	aWrites := a.count("POST /findings")
	for i := 0; i < 4; i++ {
		rec, e := do(t, rt, http.MethodPost, "/findings", `{}`)
		if rec.Code != http.StatusOK || e.ServedBy != "b" {
			t.Fatalf("post-promotion write %d: code=%d served_by=%q, want b", i, rec.Code, e.ServedBy)
		}
	}
	if got := a.count("POST /findings"); got != aWrites {
		t.Fatalf("stale ex-primary received %d new writes after promotion", got-aWrites)
	}

	cs := rt.Cluster()
	if cs.Epoch != 2 || !strings.Contains(cs.Primary, b.srv.URL) {
		t.Fatalf("cluster = primary %q epoch %d, want %q epoch 2", cs.Primary, cs.Epoch, b.srv.URL)
	}
	var staleSeen bool
	for _, bs := range cs.Backends {
		if bs.URL == a.srv.URL {
			if !bs.Stale {
				t.Fatalf("returned old primary not marked stale: %+v", bs)
			}
			staleSeen = true
		}
	}
	if !staleSeen {
		t.Fatal("old primary missing from cluster status")
	}
	if cs.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", cs.Failovers)
	}
}

func TestFencedPrimaryGetsNoTraffic(t *testing.T) {
	a, b := newStub(t, "a"), newStub(t, "b")
	a.setPrimary(2, true) // fenced ex-primary, same epoch as the winner
	b.setPrimary(2, false)
	rt := newRouter(t, a, b)

	rec, e := do(t, rt, http.MethodPost, "/findings", `{}`)
	if rec.Code != http.StatusOK || e.ServedBy != "b" {
		t.Fatalf("write: code=%d served_by=%q, want non-fenced b", rec.Code, e.ServedBy)
	}
}

func TestShedWithRetryAfterWhenNoPrimary(t *testing.T) {
	a, b := newStub(t, "a"), newStub(t, "b")
	a.setFollower(1, 0)
	b.setFollower(1, 0)
	rt := newRouter(t, a, b) // nobody claims primary

	rec, _ := do(t, rt, http.MethodPost, "/findings", `{}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("write with no primary: code=%d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("write shed missing Retry-After")
	}

	// Followers without a resolved primary are not read-eligible (their
	// epoch cannot be validated), so reads shed too — with Retry-After.
	rec, _ = do(t, rt, http.MethodPost, "/query", `{}`)
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("read with no cluster head: code=%d retry-after=%q", rec.Code, rec.Header().Get("Retry-After"))
	}
}

func TestWriteProxyErrorSheds502WithRetryAfter(t *testing.T) {
	p := newStub(t, "p")
	p.setPrimary(1, false)
	rt := newRouter(t, p)

	p.srv.Close() // primary dies between probe and request
	rec, _ := do(t, rt, http.MethodPost, "/findings", `{}`)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("write to dead primary: code=%d, want 502", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("502 shed missing Retry-After")
	}
	// The live-path failure must demote the backend immediately: the
	// next request sheds 503 (no primary) instead of dialing a corpse.
	rec, _ = do(t, rt, http.MethodPost, "/findings", `{}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("second write after markUnhealthy: code=%d, want 503", rec.Code)
	}
}

func TestReadRetriesWithBodyReplayAfterBackendDeath(t *testing.T) {
	p, f1, f2 := newStub(t, "p"), newStub(t, "f1"), newStub(t, "f2")
	p.setPrimary(1, false)
	f1.setFollower(1, 0)
	f2.setFollower(1, 0)
	rt := newRouter(t, p, f1, f2)

	f1.srv.Close() // dies after being probed healthy
	for i := 0; i < 6; i++ {
		rec, e := do(t, rt, http.MethodPost, "/query", `{"agg":"mean"}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("read %d after follower death: code=%d body=%s", i, rec.Code, rec.Body)
		}
		if e.Body != `{"agg":"mean"}` {
			t.Fatalf("read %d: replayed body = %q, want original", i, e.Body)
		}
		if e.ServedBy == "f1" {
			t.Fatalf("read %d served by dead follower", i)
		}
	}
}

func TestUnknownRouteAnd404(t *testing.T) {
	p := newStub(t, "p")
	p.setPrimary(1, false)
	rt := newRouter(t, p)

	rec, _ := do(t, rt, http.MethodGet, "/no/such/endpoint", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown route: code=%d, want 404", rec.Code)
	}
	// Wrong method on a known path is unknown too.
	rec, _ = do(t, rt, http.MethodDelete, "/query", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("DELETE /query: code=%d, want 404", rec.Code)
	}
}

func TestStandaloneBackendActsAsPrimary(t *testing.T) {
	s := newStub(t, "solo") // healthy, no /replication → standalone
	rt := newRouter(t, s)

	rec, e := do(t, rt, http.MethodPost, "/findings", `{}`)
	if rec.Code != http.StatusOK || e.ServedBy != "solo" {
		t.Fatalf("standalone write: code=%d served_by=%q", rec.Code, e.ServedBy)
	}
	rec, e = do(t, rt, http.MethodPost, "/query", `{}`)
	if rec.Code != http.StatusOK || e.ServedBy != "solo" {
		t.Fatalf("standalone read: code=%d served_by=%q", rec.Code, e.ServedBy)
	}
}

func TestRouterHealthEndpoint(t *testing.T) {
	p := newStub(t, "p")
	p.setPrimary(1, false)
	rt := newRouter(t, p)

	rec, _ := do(t, rt, http.MethodGet, "/routerz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/routerz with primary: code=%d", rec.Code)
	}

	p.setHealthy(false)
	rt.ProbeOnce()
	rec, _ = do(t, rt, http.MethodGet, "/routerz", "")
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("/routerz mid-cutover: code=%d retry-after=%q", rec.Code, rec.Header().Get("Retry-After"))
	}
}

func TestClusterEndpointShape(t *testing.T) {
	p, f := newStub(t, "p"), newStub(t, "f")
	p.setPrimary(4, false)
	f.setFollower(4, 1.5)
	rt := newRouter(t, p, f)

	rec, _ := do(t, rt, http.MethodGet, "/cluster", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/cluster: code=%d", rec.Code)
	}
	var cs ClusterStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &cs); err != nil {
		t.Fatalf("decoding /cluster: %v", err)
	}
	if cs.Epoch != 4 || cs.Primary != p.srv.URL || len(cs.Backends) != 2 {
		t.Fatalf("cluster = %+v", cs)
	}
	for _, bs := range cs.Backends {
		if bs.URL == f.srv.URL && !bs.EligibleReads {
			t.Fatalf("fresh follower not read-eligible: %+v", bs)
		}
	}
}

func TestFollowerFromOlderEpochNotReadEligible(t *testing.T) {
	p, f := newStub(t, "p"), newStub(t, "f")
	p.setPrimary(5, false)
	f.setFollower(4, 0) // not yet re-homed onto the epoch-5 primary
	rt := newRouter(t, p, f)

	rec, e := do(t, rt, http.MethodPost, "/query", `{}`)
	if rec.Code != http.StatusOK || e.ServedBy != "p" {
		t.Fatalf("read with behind-epoch follower: code=%d served_by=%q, want primary", rec.Code, e.ServedBy)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no backends should fail")
	}
	if _, err := New(Config{Backends: []string{"not a url"}}); err == nil {
		t.Fatal("New with a relative backend should fail")
	}
	if _, err := New(Config{Backends: []string{"http://x:1", "http://x:1"}}); err == nil {
		t.Fatal("New with duplicate backends should fail")
	}
}
