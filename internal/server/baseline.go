// The /sql and /flatquery endpoints: the DG-SQL surface and the
// no-warehouse flat-scan baseline, served over HTTP under the same
// governance pipeline as /query. Exposing all three query languages
// lets a load generator drive a realistic endpoint mix — and lets
// operators compare cube vs baseline latency on a live instance
// instead of only in offline benchmarks.

package server

import (
	"context"
	"net/http"

	"github.com/ddgms/ddgms/internal/flatquery"
	"github.com/ddgms/ddgms/internal/storage"
	"github.com/ddgms/ddgms/internal/value"
)

// SQLQuerier is the optional platform surface behind POST /sql.
// *core.Platform satisfies it; a platform without it answers 404 (the
// server is healthy, it just does not speak DG-SQL).
type SQLQuerier interface {
	QuerySQLCtx(ctx context.Context, src string) (*storage.Table, error)
}

// FlatQuerier is the optional platform surface behind POST /flatquery:
// the paper's no-warehouse comparator, a direct filtered scan over the
// flat analysis table. *core.Platform satisfies it.
type FlatQuerier interface {
	QueryFlatCtx(ctx context.Context, q flatquery.Query) (*flatquery.Result, error)
}

// tableDoc is the JSON form of a grouped result table.
type tableDoc struct {
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"` // numbers, strings, or null for NA
	Agg     string   `json:"agg,omitempty"`
}

func tableToDoc(t *storage.Table) tableDoc {
	doc := tableDoc{Columns: t.Schema().Names()}
	doc.Rows = make([][]any, t.Len())
	for i := 0; i < t.Len(); i++ {
		row := t.Row(i)
		out := make([]any, len(row))
		for j, v := range row {
			switch {
			case v.IsNA():
				out[j] = nil
			default:
				if f, ok := v.AsFloat(); ok {
					out[j] = f
				} else {
					out[j] = v.String()
				}
			}
		}
		doc.Rows[i] = out
	}
	return doc
}

// sqlRequest is the POST /sql body.
type sqlRequest struct {
	SQL string `json:"sql"`
}

// handleSQL runs one DG-SQL query over the flat analysis table
// (registered as "visits", matching the ddgms sql subcommand) under
// the governance pipeline.
func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	sq, ok := s.platform.(SQLQuerier)
	if !ok {
		s.writeError(w, http.StatusNotFound, "platform does not serve DG-SQL")
		return
	}
	var req sqlRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.SQL == "" {
		s.writeError(w, http.StatusBadRequest, "missing sql field")
		return
	}
	s.runGoverned(w, r, "/sql", func(ctx context.Context) (any, error) {
		t, err := sq.QuerySQLCtx(ctx, req.SQL)
		if err != nil {
			return nil, err
		}
		return tableToDoc(t), nil
	})
}

// flatFilterDoc is one filter clause in a POST /flatquery body.
type flatFilterDoc struct {
	Column string   `json:"column"`
	Values []string `json:"values"`
}

// flatQueryRequest is the POST /flatquery body: group-by columns split
// over two axes (mirroring the cube API), filters, and one aggregate.
type flatQueryRequest struct {
	Rows    []string        `json:"rows"`
	Cols    []string        `json:"cols"`
	Filters []flatFilterDoc `json:"filters"`
	Agg     string          `json:"agg"`     // count|sum|avg|min|max|distinct; default count
	Measure string          `json:"measure"` // measure column; empty means count rows
}

// handleFlatQuery runs one flat-scan baseline query under the
// governance pipeline.
func (s *Server) handleFlatQuery(w http.ResponseWriter, r *http.Request) {
	fq, ok := s.platform.(FlatQuerier)
	if !ok {
		s.writeError(w, http.StatusNotFound, "platform does not serve flat queries")
		return
	}
	var req flatQueryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Rows)+len(req.Cols) == 0 {
		s.writeError(w, http.StatusBadRequest, "need at least one rows or cols group-by column")
		return
	}
	agg := storage.CountAgg
	if req.Agg != "" {
		var err error
		if agg, err = storage.ParseAggKind(req.Agg); err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	q := flatquery.Query{Rows: req.Rows, Cols: req.Cols, Agg: agg, Measure: req.Measure}
	for _, f := range req.Filters {
		vals := make([]value.Value, 0, 2*len(f.Values))
		for _, raw := range f.Values {
			// Filter values arrive as strings; the column may hold
			// typed values. Offer both the inferred-type parse and the
			// literal string to the allowed set — it is an OR, so the
			// extra candidate can only match, never exclude.
			parsed := value.Parse(raw)
			vals = append(vals, parsed)
			if lit := value.Str(raw); !parsed.Equal(lit) {
				vals = append(vals, lit)
			}
		}
		q.Filters = append(q.Filters, flatquery.Filter{Column: f.Column, Values: vals})
	}
	s.runGoverned(w, r, "/flatquery", func(ctx context.Context) (any, error) {
		res, err := fq.QueryFlatCtx(ctx, q)
		if err != nil {
			return nil, err
		}
		doc := tableToDoc(res.Grouped)
		doc.Agg = res.AggName
		return doc, nil
	})
}
