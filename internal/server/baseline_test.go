package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"github.com/ddgms/ddgms/internal/govern"
)

func TestSQLEndpoint(t *testing.T) {
	ts := testServer(t)
	var doc tableDoc
	code := postJSON(t, ts.URL+"/sql", map[string]string{
		"sql": "SELECT Gender, count(*) AS n FROM visits GROUP BY Gender ORDER BY Gender",
	}, &doc)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(doc.Columns) != 2 || doc.Columns[0] != "Gender" {
		t.Fatalf("columns = %v", doc.Columns)
	}
	if len(doc.Rows) == 0 {
		t.Fatal("no rows from GROUP BY Gender")
	}
	// The synthetic cohort has both genders; counts must be positive
	// numbers (JSON decodes them as float64).
	for _, row := range doc.Rows {
		n, ok := row[1].(float64)
		if !ok || n <= 0 {
			t.Fatalf("bad count in row %v", row)
		}
	}
}

func TestSQLEndpointErrors(t *testing.T) {
	ts := testServer(t)
	var errDoc map[string]string
	if code := postJSON(t, ts.URL+"/sql", map[string]string{}, &errDoc); code != http.StatusBadRequest {
		t.Fatalf("missing sql: status = %d", code)
	}
	if code := postJSON(t, ts.URL+"/sql", map[string]string{"sql": "DROP TABLE visits"}, &errDoc); code != http.StatusBadRequest {
		t.Fatalf("unsupported statement: status = %d, err = %v", code, errDoc)
	}
	if code := postJSON(t, ts.URL+"/sql", map[string]string{"sql": "SELECT x FROM nope"}, &errDoc); code != http.StatusBadRequest {
		t.Fatalf("unknown table: status = %d", code)
	}
}

func TestFlatQueryEndpoint(t *testing.T) {
	ts := testServer(t)
	var doc map[string]any
	code := postJSON(t, ts.URL+"/flatquery", map[string]any{
		"rows": []string{"Gender"},
		"agg":  "count",
	}, &doc)
	if code != http.StatusOK {
		t.Fatalf("status = %d, body = %v", code, doc)
	}
	// A platform without the interface would have answered 404; the
	// exact result shape is flatquery's own concern — the endpoint test
	// only cares that a grouped result came back.
	if doc == nil {
		t.Fatal("empty response document")
	}
}

func TestFlatQueryEndpointErrors(t *testing.T) {
	ts := testServer(t)
	var errDoc map[string]string
	if code := postJSON(t, ts.URL+"/flatquery", map[string]any{
		"rows": []string{"Gender"}, "agg": "transmogrify",
	}, &errDoc); code != http.StatusBadRequest {
		t.Fatalf("unknown agg: status = %d", code)
	}
	if code := postJSON(t, ts.URL+"/flatquery", map[string]any{
		"rows": []string{"NoSuchColumn"}, "agg": "count",
	}, &errDoc); code != http.StatusBadRequest {
		t.Fatalf("unknown column: status = %d, err = %v", code, errDoc)
	}
}

// Both baseline endpoints run under the same governance pipeline as
// /query: a saturated admission queue sheds them with 429 and a
// Retry-After header.
func TestBaselineEndpointsGoverned(t *testing.T) {
	p := testPlatform(t)
	slow := &slowPlatform{Platform: p, delay: 200 * time.Millisecond}
	srv := New(slow, WithAdmission(govern.NewAdmission(1, 0, 0)))
	ts := serveHandler(t, srv)

	// Occupy the only slot with a slow MDX query.
	release := make(chan struct{})
	go func() {
		defer close(release)
		postJSON(t, ts.URL+"/query", map[string]string{
			"mdx": "SELECT {[PersonalInformation].[Gender].MEMBERS} ON COLUMNS FROM [MedicalMeasures]",
		}, nil)
	}()
	time.Sleep(50 * time.Millisecond)

	for _, path := range []string{"/sql", "/flatquery"} {
		body := map[string]any{"sql": "SELECT Gender FROM visits"}
		if path == "/flatquery" {
			body = map[string]any{"rows": []string{"Gender"}, "agg": "count"}
		}
		resp := doPost(t, ts.URL+path, body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s while saturated: status = %d, want 429", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s shed without Retry-After header", path)
		}
	}
	<-release
}

// Draining answers 503 and, like every shed, tells clients when to
// come back.
func TestDrainSheds503WithRetryAfter(t *testing.T) {
	srv := New(testPlatform(t))
	ts := serveHandler(t, srv)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp := doPost(t, ts.URL+"/query", map[string]string{"mdx": "SELECT"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain 503 without Retry-After header")
	}
}

// Oversized bodies on the baseline endpoints answer 413, same as
// /query.
func TestBaselineBodyCap(t *testing.T) {
	srv := New(testPlatform(t), WithMaxBodyBytes(128))
	ts := serveHandler(t, srv)
	huge := append([]byte(`{"sql": "`), bytes.Repeat([]byte("x"), 1024)...)
	huge = append(huge, []byte(`"}`)...)
	resp, err := http.Post(ts.URL+"/sql", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status = %d, want 413", resp.StatusCode)
	}
}

// doPost is postJSON but returns the raw response so headers are
// inspectable.
func doPost(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
