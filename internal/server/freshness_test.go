package server

import (
	"net/http"
	"path/filepath"
	"testing"

	"github.com/ddgms/ddgms/internal/core"
	"github.com/ddgms/ddgms/internal/discri"
	"github.com/ddgms/ddgms/internal/oltp"
	"github.com/ddgms/ddgms/internal/refresh"
)

// followTestPlatform stands up a follow-mode platform over a durable
// store seeded with a small cohort, plus the cohort table for streaming
// more rows.
func followTestPlatform(t *testing.T) (*core.Platform, func()) {
	t.Helper()
	dcfg := discri.DefaultConfig()
	dcfg.Patients = 60
	raw, err := discri.Generate(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	p := core.New(core.Config{DataDir: filepath.Join(dir, "store")})
	t.Cleanup(func() { p.Close() })
	if err := p.OpenStore(raw.Schema()); err != nil {
		t.Fatal(err)
	}
	if err := p.Store().LoadTable(raw); err != nil {
		t.Fatal(err)
	}
	if err := p.StartFollow(core.FollowConfig{
		Pipeline:  core.NewDiScRiPipeline(),
		Builder:   core.NewDiScRiBuilder(),
		CursorDir: filepath.Join(dir, "cdc"),
		Setup:     core.FinishDiScRiSetup,
	}); err != nil {
		t.Fatal(err)
	}
	commitOne := func() {
		tx := p.Store().Begin()
		if _, err := tx.Insert(oltp.Row(raw.Row(0))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	return p, commitOne
}

func TestFreshnessEndpoint(t *testing.T) {
	p, commitOne := followTestPlatform(t)
	ts := serveHandler(t, New(p))

	var f refresh.Freshness
	if code := getJSON(t, ts.URL+"/freshness", &f); code != http.StatusOK {
		t.Fatalf("GET /freshness = %d, want 200", code)
	}
	if f.LagTx != 0 || f.AppliedCommits != f.StoreCommits {
		t.Fatalf("fresh follower reports lag: %+v", f)
	}
	if f.AppliedLSN.IsZero() || f.LiveRows == 0 {
		t.Fatalf("freshness payload missing bootstrap state: %+v", f)
	}

	// Unapplied commits must surface as transaction lag...
	commitOne()
	commitOne()
	if code := getJSON(t, ts.URL+"/freshness", &f); code != http.StatusOK {
		t.Fatalf("GET /freshness = %d, want 200", code)
	}
	if f.LagTx != 2 {
		t.Fatalf("lag_tx = %d after 2 unapplied commits, want 2", f.LagTx)
	}

	// ...and clear once the follower catches up.
	for {
		n, err := p.Refresh()
		if err != nil {
			t.Fatalf("Refresh: %v", err)
		}
		if n == 0 {
			break
		}
	}
	if code := getJSON(t, ts.URL+"/freshness", &f); code != http.StatusOK {
		t.Fatalf("GET /freshness = %d, want 200", code)
	}
	if f.LagTx != 0 || f.AppliedCommits != f.StoreCommits {
		t.Fatalf("lag not cleared after drain: %+v", f)
	}

	// Queries against the follow-mode platform still serve.
	var out map[string]any
	if code := getJSON(t, ts.URL+"/schema", &out); code != http.StatusOK {
		t.Fatalf("GET /schema on follow platform = %d, want 200", code)
	}
}

func TestFreshnessNotFollowing(t *testing.T) {
	ts := testServer(t) // batch-mode platform: healthy, but nothing to report
	var body map[string]string
	if code := getJSON(t, ts.URL+"/freshness", &body); code != http.StatusNotFound {
		t.Fatalf("GET /freshness on batch platform = %d, want 404", code)
	}
	if body["error"] == "" {
		t.Fatal("404 body carries no error message")
	}
}
