package server

import (
	"context"
	"io"
	"log"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ddgms/ddgms/internal/govern"
)

// TestTimeoutDoesNotLeakGoroutines is the regression test for the old
// side-goroutine timeout: 50 queries that all time out must leave the
// goroutine count at its baseline, because cancellation now stops the
// evaluation itself instead of abandoning it.
func TestTimeoutDoesNotLeakGoroutines(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	p := &slowPlatform{Platform: testPlatform(t), delay: 10 * time.Second}
	ts := serveHandler(t, New(p, WithQueryTimeout(5*time.Millisecond), WithLogger(quiet)))

	baseline := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		if code := postJSON(t, ts.URL+"/query", queryRequest{MDX: genderMDX}, nil); code != http.StatusGatewayTimeout {
			t.Fatalf("query %d status = %d, want 504", i, code)
		}
	}
	// Give the cancelled evaluations a moment to unwind, then require the
	// goroutine count back at (or below) baseline plus slack for the
	// httptest keep-alive pool.
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after 50 timed-out queries = %d, baseline %d", n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestAdmissionShedsWith429(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	p := &slowPlatform{Platform: testPlatform(t), delay: 300 * time.Millisecond}
	srv := New(p,
		WithQueryTimeout(5*time.Second),
		WithAdmission(govern.NewAdmission(1, 0, 0)),
		WithLogger(quiet))
	ts := serveHandler(t, srv)

	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(release)
		postJSON(t, ts.URL+"/query", queryRequest{MDX: genderMDX}, nil)
	}()
	<-release
	time.Sleep(50 * time.Millisecond) // let the slow query hold the slot

	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"mdx": "SELECT x"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	wg.Wait()
	// With the slot free again, queries are admitted.
	if code := postJSON(t, ts.URL+"/query", queryRequest{MDX: genderMDX}, nil); code != http.StatusOK {
		t.Errorf("post-drain status = %d, want 200", code)
	}
}

func TestAdmissionWaitTimeoutAnswers503(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	p := &slowPlatform{Platform: testPlatform(t), delay: 500 * time.Millisecond}
	srv := New(p,
		WithQueryTimeout(5*time.Second),
		WithAdmission(govern.NewAdmission(1, 4, 20*time.Millisecond)),
		WithLogger(quiet))
	ts := serveHandler(t, srv)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postJSON(t, ts.URL+"/query", queryRequest{MDX: genderMDX}, nil)
	}()
	time.Sleep(50 * time.Millisecond)

	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"mdx": "SELECT x"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued-timeout status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queued-timeout response missing Retry-After")
	}
	wg.Wait()
}

func TestQueryBudgetAnswers422(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	srv := New(testPlatform(t),
		WithQueryBudget(func() *govern.Budget { return govern.NewBudget(1, 0, 0) }),
		WithLogger(quiet))
	ts := serveHandler(t, srv)

	var errBody errorBody
	code := postJSON(t, ts.URL+"/query", queryRequest{MDX: genderMDX}, &errBody)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("over-budget status = %d, want 422 (%v)", code, errBody)
	}
	if !strings.Contains(errBody.Error, "budget") {
		t.Errorf("error = %q", errBody.Error)
	}
}

func TestBreakerFastFails(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	var mu sync.Mutex
	var healthErr error
	b := govern.NewBreaker(govern.BreakerConfig{
		Name: "server-test",
		Health: func() error {
			mu.Lock()
			defer mu.Unlock()
			return healthErr
		},
	})
	srv := New(testPlatform(t), WithBreaker(b), WithLogger(quiet))
	ts := serveHandler(t, srv)

	if code := postJSON(t, ts.URL+"/query", queryRequest{MDX: genderMDX}, nil); code != http.StatusOK {
		t.Fatalf("healthy status = %d", code)
	}
	mu.Lock()
	healthErr = context.DeadlineExceeded // any non-nil error
	mu.Unlock()
	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"mdx": "SELECT x"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("fast-fail response missing Retry-After")
	}
	// Recovery is immediate once the dependency heals.
	mu.Lock()
	healthErr = nil
	mu.Unlock()
	if code := postJSON(t, ts.URL+"/query", queryRequest{MDX: genderMDX}, nil); code != http.StatusOK {
		t.Errorf("recovered status = %d", code)
	}
}

// TestShutdownCancelsInflight: when the drain deadline expires, in-flight
// queries are cancelled (answer 503) instead of running to completion —
// the process exits within a cancellation interval, not a query duration.
func TestShutdownCancelsInflight(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	p := &slowPlatform{Platform: testPlatform(t), delay: 10 * time.Second}
	srv := New(p, WithQueryTimeout(time.Minute), WithLogger(quiet))
	ts := serveHandler(t, srv)

	codes := make(chan int, 1)
	go func() {
		codes <- postJSON(t, ts.URL+"/query", queryRequest{MDX: genderMDX}, nil)
	}()
	time.Sleep(50 * time.Millisecond) // let the query get admitted

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err == nil {
		t.Error("Shutdown with a held query and expired context reported a clean drain")
	}
	select {
	case code := <-codes:
		if code != http.StatusServiceUnavailable {
			t.Errorf("cancelled in-flight query status = %d, want 503", code)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight query not cancelled by expired drain")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("shutdown took %v; cancellation should be prompt", elapsed)
	}
}
