package server

import (
	"net/http"
	"strings"

	"github.com/ddgms/ddgms/internal/obs"
)

// HTTP metric families. The route label is drawn from the fixed
// endpoint set (unknown paths collapse to "other"), so cardinality is
// bounded no matter what clients request.
var (
	metricRequests = obs.Default().CounterVec(
		"ddgms_http_requests_total",
		"HTTP requests served, by route and status code.",
		"route", "code")
	metricRequestSeconds = obs.Default().HistogramVec(
		"ddgms_http_request_seconds",
		"HTTP request latency by route.",
		nil,
		"route")
	metricErrors = obs.Default().CounterVec(
		"ddgms_http_errors_total",
		"HTTP 5xx responses, by route and status code.",
		"route", "code")
	metricPanics = obs.Default().Counter(
		"ddgms_http_panics_total",
		"Handler panics caught by the recovery middleware.")
	metricInflight = obs.Default().Gauge(
		"ddgms_http_inflight_requests",
		"Requests currently being served.")
)

// routeLabel collapses a request path onto the served endpoint set.
func routeLabel(path string) string {
	switch path {
	case "/healthz", "/schema", "/query", "/sql", "/flatquery",
		"/freshness", "/replication", "/promote", "/findings",
		"/findings/reinforce", "/metrics", "/debug/traces":
		return path
	}
	if strings.HasPrefix(path, "/debug/pprof") {
		return "/debug/pprof"
	}
	return "other"
}

// statusRecorder captures the response status (default 200 when a
// handler writes the body directly) and carries the route label down to
// writeJSON so 5xx responses are attributed to their endpoint.
type statusRecorder struct {
	http.ResponseWriter
	status int
	route  string
}

func (sr *statusRecorder) WriteHeader(status int) {
	sr.status = status
	sr.ResponseWriter.WriteHeader(status)
}
