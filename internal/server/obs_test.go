package server

import (
	"io"
	"log"
	"net/http"
	"strings"
	"testing"

	"github.com/ddgms/ddgms/internal/obs"
	"github.com/ddgms/ddgms/internal/storage"
	"github.com/ddgms/ddgms/internal/value"
)

const genderMDX = `
	SELECT {[PersonalInformation].[Gender].MEMBERS} ON COLUMNS
	FROM [MedicalMeasures]`

// TestQueryTraceSpans: ?trace=1 must return a span tree covering the
// whole execution path — parse, encode, filter, then the kernel's
// scan -> merge -> sort inside the group stage.
func TestQueryTraceSpans(t *testing.T) {
	ts := testServer(t)
	var doc cellSetDoc
	if code := postJSON(t, ts.URL+"/query?trace=1", queryRequest{MDX: genderMDX}, &doc); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if doc.Trace == nil {
		t.Fatal("?trace=1 response has no trace")
	}
	root := doc.Trace.Root
	if root.Name != "query" {
		t.Errorf("root span = %q", root.Name)
	}
	for _, name := range []string{
		"mdx.parse", "cube.encode", "cube.filter", "cube.group",
		"exec.scan", "exec.merge", "exec.sort", "cube.assemble",
	} {
		if _, ok := root.FindSpan(name); !ok {
			t.Errorf("span %q missing from trace", name)
		}
	}
	scan, _ := root.FindSpan("exec.scan")
	if scan.Attrs["rows"] == nil {
		t.Errorf("exec.scan has no rows annotation: %v", scan.Attrs)
	}
	grp, _ := root.FindSpan("cube.group")
	if grp.DurationUS > doc.Trace.DurationUS {
		t.Errorf("cube.group %dus exceeds trace %dus", grp.DurationUS, doc.Trace.DurationUS)
	}

	// Without the flag, no trace document rides on the response.
	var plain cellSetDoc
	if code := postJSON(t, ts.URL+"/query", queryRequest{MDX: genderMDX}, &plain); code != http.StatusOK {
		t.Fatalf("untraced status = %d", code)
	}
	if plain.Trace != nil {
		t.Error("untraced response carries a trace")
	}
}

// TestDebugTraces: every /query lands in the ring buffer, traced or not.
func TestDebugTraces(t *testing.T) {
	ts := testServer(t)
	if code := postJSON(t, ts.URL+"/query", queryRequest{MDX: genderMDX}, nil); code != http.StatusOK {
		t.Fatalf("query status = %d", code)
	}
	var body struct {
		Traces []obs.TraceDoc `json:"traces"`
	}
	if code := getJSON(t, ts.URL+"/debug/traces", &body); code != http.StatusOK {
		t.Fatalf("/debug/traces status = %d", code)
	}
	if len(body.Traces) == 0 {
		t.Fatal("ring buffer empty after a query")
	}
	if body.Traces[0].Root.Name != "query" {
		t.Errorf("latest trace root = %q", body.Traces[0].Root.Name)
	}
	if body.Traces[0].Root.Attrs["mdx"] == nil {
		t.Error("trace root missing mdx annotation")
	}
}

// TestMetricsEndpoint: the exposition must cover the server, exec, oltp,
// etl and storage families after ordinary traffic.
func TestMetricsEndpoint(t *testing.T) {
	ts := testServer(t)
	if code := postJSON(t, ts.URL+"/query", queryRequest{MDX: genderMDX}, nil); code != http.StatusOK {
		t.Fatalf("query status = %d", code)
	}
	// Build one dictionary so the column-encoding gauge families have a
	// labeled sample, not just their TYPE headers.
	sch, err := storage.NewSchema(storage.Field{Name: "G", Kind: value.StringKind})
	if err != nil {
		t.Fatal(err)
	}
	tbl := storage.MustTable(sch)
	for i := 0; i < 4; i++ {
		if err := tbl.AppendRow([]value.Value{value.Str("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.Dict("G"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`ddgms_http_requests_total{route="/query",code="200"}`,
		"# TYPE ddgms_http_request_seconds histogram",
		"ddgms_exec_rows_scanned_total",
		`ddgms_exec_kernel_invocations_total{path=`,
		"# TYPE ddgms_oltp_commits_total counter",
		"ddgms_oltp_wal_fsyncs_total",
		"# TYPE ddgms_etl_step_seconds histogram",
		"ddgms_cube_queries_total",
		"# TYPE ddgms_storage_column_encoding gauge",
		"# TYPE ddgms_storage_column_bytes gauge",
		`ddgms_storage_column_encoding{encoding=`,
		`ddgms_storage_column_bytes{encoding=`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestErrorCounter: 5xx responses must increment the error family, so
// error rates are visible without log scraping.
func TestErrorCounter(t *testing.T) {
	before := metricErrors.WithLabelValues("/query", "500").Value()
	panicsBefore := metricPanics.Value()

	quiet := log.New(io.Discard, "", 0)
	p := &panicPlatform{Platform: testPlatform(t)}
	ts := serveHandler(t, New(p, WithLogger(quiet)))
	if code := postJSON(t, ts.URL+"/query", queryRequest{MDX: "SELECT x"}, nil); code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", code)
	}
	if got := metricErrors.WithLabelValues("/query", "500").Value(); got != before+1 {
		t.Errorf("error counter = %d, want %d", got, before+1)
	}

	// A handler panic (outside the query goroutine) trips the recovery
	// middleware counter too.
	p2 := &panicPlatform{Platform: testPlatform(t), panicWarehouse: true}
	ts2 := serveHandler(t, New(p2, WithLogger(quiet)))
	if code := getJSON(t, ts2.URL+"/schema", nil); code != http.StatusInternalServerError {
		t.Fatalf("schema panic status = %d", code)
	}
	if got := metricPanics.Value(); got != panicsBefore+1 {
		t.Errorf("panic counter = %d, want %d", got, panicsBefore+1)
	}
}
