package server

import (
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"github.com/ddgms/ddgms/internal/core"
	"github.com/ddgms/ddgms/internal/discri"
	"github.com/ddgms/ddgms/internal/repl"
)

// TestHandlePromote exercises the HTTP face of failover: a replica is
// cut over with one POST /promote against the node, after which it
// reports as the epoch-2 primary; the request is rejected with 400 on
// a missing listen address and 409 when the node has nothing to
// promote (it already leads).
func TestHandlePromote(t *testing.T) {
	dcfg := discri.DefaultConfig()
	dcfg.Patients = 40
	raw, err := discri.Generate(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	primary := core.New(core.Config{DataDir: filepath.Join(dir, "primary")})
	t.Cleanup(func() { primary.Close() })
	if err := primary.OpenStore(raw.Schema()); err != nil {
		t.Fatal(err)
	}
	if err := primary.Store().LoadTable(raw); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.AttachPrimary(core.ReplicateListenConfig{
		Listener:       ln,
		HeartbeatEvery: 25 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}

	replica := core.New(core.Config{DataDir: filepath.Join(dir, "replica")})
	t.Cleanup(func() { replica.Close() })
	if err := replica.OpenStore(raw.Schema()); err != nil {
		t.Fatal(err)
	}
	if err := replica.AttachReplica(core.ReplicateFromConfig{
		PrimaryAddr: ln.Addr().String(),
		ID:          "reader-1",
		CursorDir:   filepath.Join(dir, "replcur"),
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-replica.ReplicaReady():
	case <-time.After(10 * time.Second):
		t.Fatal("replica never caught up")
	}

	pts := serveHandler(t, New(primary))
	rts := serveHandler(t, New(replica))

	// Missing listen address: rejected before anything changes.
	var errBody map[string]string
	if code := postJSON(t, rts.URL+"/promote", map[string]string{}, &errBody); code != http.StatusBadRequest {
		t.Fatalf("POST /promote without listen = %d, want 400", code)
	}

	// A primary has nothing to promote: conflict, not success.
	if code := postJSON(t, pts.URL+"/promote", map[string]string{"listen": "127.0.0.1:0"}, &errBody); code != http.StatusConflict {
		t.Fatalf("POST /promote on the primary = %d, want 409", code)
	}

	// The real cutover: the old primary dies first, then one request
	// flips the replica.
	primary.StopReplication()
	var st repl.Status
	if code := postJSON(t, rts.URL+"/promote", map[string]string{"listen": "127.0.0.1:0"}, &st); code != http.StatusOK {
		t.Fatalf("POST /promote on the replica = %d, want 200", code)
	}
	if st.Role != "primary" || st.Epoch != 2 || st.Fenced {
		t.Fatalf("promoted status = %+v", st)
	}
	// The node's own /replication now agrees, and local writes work.
	var again repl.Status
	if code := getJSON(t, rts.URL+"/replication", &again); code != http.StatusOK || again.Role != "primary" || again.Epoch != 2 {
		t.Fatalf("GET /replication after promote = %d %+v", code, again)
	}
	if replica.Store().IsReplica() {
		t.Fatal("promoted store still refuses local writes")
	}
}

func TestPromoteNotSupported(t *testing.T) {
	ts := testServer(t) // standalone platform: no replication roles
	var body map[string]string
	if code := postJSON(t, ts.URL+"/promote", map[string]string{"listen": "127.0.0.1:0"}, &body); code != http.StatusConflict {
		t.Fatalf("POST /promote without replication = %d, want 409 (nothing to promote)", code)
	}
	if body["error"] == "" {
		t.Fatal("409 body carries no error message")
	}
}
