package server

import (
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"github.com/ddgms/ddgms/internal/core"
	"github.com/ddgms/ddgms/internal/discri"
	"github.com/ddgms/ddgms/internal/repl"
)

// TestReplicationEndpoint stands up a primary platform shipping its WAL
// and a replica platform applying it, and checks that /replication on
// each side reports its role, the follower roster, and the replica's
// cursor.
func TestReplicationEndpoint(t *testing.T) {
	dcfg := discri.DefaultConfig()
	dcfg.Patients = 40
	raw, err := discri.Generate(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	primary := core.New(core.Config{DataDir: filepath.Join(dir, "primary")})
	t.Cleanup(func() { primary.Close() })
	if err := primary.OpenStore(raw.Schema()); err != nil {
		t.Fatal(err)
	}
	if err := primary.Store().LoadTable(raw); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.AttachPrimary(core.ReplicateListenConfig{
		Listener:       ln,
		HeartbeatEvery: 25 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}

	replica := core.New(core.Config{DataDir: filepath.Join(dir, "replica")})
	t.Cleanup(func() { replica.Close() })
	if err := replica.OpenStore(raw.Schema()); err != nil {
		t.Fatal(err)
	}
	if err := replica.AttachReplica(core.ReplicateFromConfig{
		PrimaryAddr: ln.Addr().String(),
		ID:          "reader-1",
		CursorDir:   filepath.Join(dir, "replcur"),
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-replica.ReplicaReady():
	case <-time.After(10 * time.Second):
		t.Fatal("replica never caught up")
	}

	pts := serveHandler(t, New(primary))
	rts := serveHandler(t, New(replica))

	var pst repl.Status
	if code := getJSON(t, pts.URL+"/replication", &pst); code != http.StatusOK {
		t.Fatalf("GET /replication on primary = %d, want 200", code)
	}
	if pst.Role != "primary" {
		t.Fatalf("primary role = %q", pst.Role)
	}
	if len(pst.Followers) != 1 || pst.Followers[0].ID != "reader-1" {
		t.Fatalf("primary follower roster = %+v", pst.Followers)
	}
	if !pst.Followers[0].Connected {
		t.Fatalf("follower not reported connected: %+v", pst.Followers[0])
	}
	if pst.DurableLSN == nil || pst.DurableLSN.IsZero() {
		t.Fatalf("primary reports no durable LSN: %+v", pst)
	}

	var rst repl.Status
	if code := getJSON(t, rts.URL+"/replication", &rst); code != http.StatusOK {
		t.Fatalf("GET /replication on replica = %d, want 200", code)
	}
	if rst.Role != "follower" || rst.ID != "reader-1" {
		t.Fatalf("replica status = %+v", rst)
	}
	if !rst.Connected || rst.Cursor.IsZero() {
		t.Fatalf("replica not streaming: %+v", rst)
	}

	// The replica's store mirrors the primary's row count.
	if got, want := replica.Store().Len(), primary.Store().Len(); got != want {
		t.Fatalf("replica has %d live rows, primary %d", got, want)
	}
}

func TestReplicationNotAttached(t *testing.T) {
	ts := testServer(t) // standalone platform: healthy, nothing to report
	var body map[string]string
	if code := getJSON(t, ts.URL+"/replication", &body); code != http.StatusNotFound {
		t.Fatalf("GET /replication without replication = %d, want 404", code)
	}
	if body["error"] == "" {
		t.Fatal("404 body carries no error message")
	}
}
