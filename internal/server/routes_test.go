package server

import (
	"strings"
	"testing"

	"github.com/ddgms/ddgms/internal/router"
)

// TestRouteLabelCoversEveryRoute is the drift guard: every pattern the
// mux registers must map to a dedicated metrics label, never to the
// "other" bucket. PR 8 fixed exactly this drift by hand for /sql,
// /flatquery and /replication; this test makes the next new endpoint
// fail loudly instead.
func TestRouteLabelCoversEveryRoute(t *testing.T) {
	s := New(testPlatform(t))
	routes := s.Routes()
	if len(routes) == 0 {
		t.Fatal("no routes registered")
	}
	seen := map[string]bool{}
	for _, pattern := range routes {
		if seen[pattern] {
			t.Errorf("route %q registered twice", pattern)
		}
		seen[pattern] = true
		_, path, ok := strings.Cut(pattern, " ")
		if !ok || !strings.HasPrefix(path, "/") {
			t.Fatalf("route %q is not of the form %q", pattern, "METHOD /path")
		}
		if got := routeLabel(path); got != path {
			t.Errorf("routeLabel(%q) = %q; every registered route needs its own label", path, got)
		}
	}
	// The collapse rules themselves must keep holding: arbitrary paths
	// stay bounded-cardinality, and pprof keeps its prefix bucket.
	if got := routeLabel("/no/such/endpoint"); got != "other" {
		t.Errorf("routeLabel(unknown) = %q, want other", got)
	}
	if got := routeLabel("/debug/pprof/heap"); got != "/debug/pprof" {
		t.Errorf("routeLabel(pprof) = %q, want /debug/pprof", got)
	}
}

// TestRouterClassifiesEveryRoute keeps the routing front's endpoint
// table in lockstep with the mux: a new backend route must either be
// classified by the router or explicitly listed here as direct-access
// only, otherwise clients behind the router would get 404 for an
// endpoint the backend serves.
func TestRouterClassifiesEveryRoute(t *testing.T) {
	// Debug/introspection surfaces are per-node by nature; operators hit
	// the backend directly rather than asking the front to pick one.
	directOnly := map[string]bool{
		"GET /debug/traces": true,
		// Promotion targets one specific node; routing it through the
		// balanced front would be dangerous nonsense.
		"POST /promote": true,
	}
	s := New(testPlatform(t))
	for _, pattern := range s.Routes() {
		method, path, ok := strings.Cut(pattern, " ")
		if !ok {
			t.Fatalf("route %q is not of the form %q", pattern, "METHOD /path")
		}
		got := router.Classify(method, path)
		if directOnly[pattern] {
			if got != "unknown" {
				t.Errorf("route %q listed as direct-only but classified %q", pattern, got)
			}
			continue
		}
		if got == "unknown" {
			t.Errorf("route %q is not classified by the router; add it to the routing table or the direct-only list", pattern)
		}
	}
	// Mutations must never land on the balanced-read path.
	for _, pattern := range []string{"POST /findings", "POST /findings/reinforce"} {
		method, path, _ := strings.Cut(pattern, " ")
		if got := router.Classify(method, path); got != "write" {
			t.Errorf("Classify(%q) = %q, want write", pattern, got)
		}
	}
}
