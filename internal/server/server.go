// Package server exposes a DD-DGMS platform over HTTP/JSON — the
// "service model" phase of clinical decision support the paper's
// introduction describes (Wright & Sittig's fourth architecture phase):
// the clinical information system and the decision-support system are
// separated, communicating through service interfaces, so departments,
// hospitals and research groups can share one warehouse.
//
// Endpoints:
//
//	GET  /healthz            liveness; ?deep=1 adds readiness (warehouse built, OLTP store open)
//	GET  /schema             the star schema: dimensions, attributes, hierarchies, measures
//	POST /query              {"mdx": "SELECT ..."} -> cell set as JSON; ?trace=1 attaches a span tree
//	GET  /freshness          follow-mode lag: transactions and wall-clock behind the OLTP store
//	GET  /replication        WAL-shipping health: per-follower lag on a primary, cursor/connection on a replica
//	GET  /findings?q=term    knowledge-base search
//	POST /findings           {"topic","statement","source"} -> recorded finding id
//	POST /findings/reinforce {"id"} -> evidence added (promotes at threshold)
//	GET  /metrics            Prometheus text exposition of every subsystem's counters
//	GET  /debug/traces       ring buffer of recent query traces as JSON
//
// The handler degrades gracefully rather than falling over: every request
// runs under panic recovery (a handler bug answers 500 JSON, not a dropped
// connection), POST bodies are size-capped (413 when exceeded), /query is
// cancelled — not merely abandoned — on timeout, client disconnect or
// shutdown (the context reaches the execution kernel, which stops
// scanning), and Shutdown drains in-flight queries before the process
// exits, cancelling them if the drain deadline expires. An optional
// admission controller sheds excess load with 429/503 + Retry-After, an
// optional per-query budget stops runaway scans with 422, and an optional
// circuit breaker fast-fails queries while the OLTP store is unhealthy.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/ddgms/ddgms/internal/cube"
	"github.com/ddgms/ddgms/internal/govern"
	"github.com/ddgms/ddgms/internal/kb"
	"github.com/ddgms/ddgms/internal/obs"
	"github.com/ddgms/ddgms/internal/oltp"
	"github.com/ddgms/ddgms/internal/refresh"
	"github.com/ddgms/ddgms/internal/repl"
	"github.com/ddgms/ddgms/internal/star"
)

// Platform is the surface the server needs from a DD-DGMS instance.
// *core.Platform satisfies it; tests substitute wrappers (e.g. a
// deliberately slow cube) to exercise degradation paths.
type Platform interface {
	Warehouse() *star.Schema
	QueryMDX(src string) (*cube.CellSet, error)
	KB() *kb.Base
	RecordFinding(topic, statement, source string) (string, error)
	Store() *oltp.Store
}

// FreshnessReporter is the optional platform surface behind /freshness.
// *core.Platform satisfies it; ok=false means the platform is not in
// follow mode (the endpoint answers 404).
type FreshnessReporter interface {
	Freshness() (refresh.Freshness, bool)
}

// ReplicationReporter is the optional platform surface behind
// /replication. *core.Platform satisfies it; ok=false means no
// replication role is attached (the endpoint answers 404).
type ReplicationReporter interface {
	Replication() (repl.Status, bool)
}

// Promoter is the optional platform surface behind POST /promote.
// *core.Platform always satisfies it; a platform that is not currently
// a replica answers 409 (nothing to promote), and a platform type
// without the method at all answers 404.
type Promoter interface {
	PromoteToPrimary(listenAddr string) (repl.Status, error)
}

// PromoteListenDefaulter is the optional platform surface supplying a
// default replication listen address for POST /promote bodies that omit
// one. *core.Platform satisfies it (serve -promote-listen); an
// auto-failover router can then promote a node without knowing its
// listener layout.
type PromoteListenDefaulter interface {
	PromoteListenAddr() string
}

// FindingsReinforcer is the optional platform surface behind POST
// /findings/reinforce. *core.Platform satisfies it and routes the
// reinforcement through the replicated KB-event path (the OLTP WAL);
// platforms without it fall back to mutating the in-memory base.
type FindingsReinforcer interface {
	ReinforceFinding(id string) error
}

// TracedQuerier is the optional platform surface behind ?trace=1.
// It is checked only for traced requests, so a test wrapper that
// overrides QueryMDX (but embeds a type promoting QueryMDXTraced) still
// intercepts every untraced query.
type TracedQuerier interface {
	QueryMDXTraced(src string, sp *obs.Span) (*cube.CellSet, error)
}

// CtxQuerier is the optional context-aware query surface. When the
// platform implements it (as *core.Platform does), /query evaluates
// inline under the request context: a timeout, client disconnect or
// server shutdown cancels the scan inside the execution kernel instead
// of abandoning a goroutine that keeps burning CPU to completion.
type CtxQuerier interface {
	QueryMDXCtx(ctx context.Context, src string) (*cube.CellSet, error)
}

// TracedCtxQuerier combines CtxQuerier and TracedQuerier for ?trace=1
// requests.
type TracedCtxQuerier interface {
	QueryMDXTracedCtx(ctx context.Context, src string, sp *obs.Span) (*cube.CellSet, error)
}

// Option customises a Server.
type Option func(*Server)

// WithQueryTimeout bounds how long one /query may run; 0 disables the
// bound. Default 30s.
func WithQueryTimeout(d time.Duration) Option {
	return func(s *Server) { s.queryTimeout = d }
}

// WithMaxBodyBytes caps POST request bodies. Default 1 MiB.
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) { s.maxBody = n }
}

// WithLogger routes server diagnostics (panics, failed response writes)
// somewhere other than the process default logger.
func WithLogger(l *log.Logger) Option {
	return func(s *Server) { s.log = l }
}

// WithTracer substitutes the per-query tracer (default: a ring of the
// 128 most recent traces). Pass nil to disable query tracing entirely.
func WithTracer(t *obs.Tracer) Option {
	return func(s *Server) { s.tracer = t }
}

// WithAdmission bounds /query concurrency with an admission controller:
// excess queries wait in its FIFO queue and are shed with 429 (queue
// full) or 503 (wait timed out), both carrying Retry-After. nil (the
// default) admits everything.
func WithAdmission(a *govern.Admission) Option {
	return func(s *Server) { s.admission = a }
}

// WithBreaker fast-fails /query with 503 while the breaker is open or
// its health probe (typically the OLTP store) reports unhealthy. nil
// (the default) never fast-fails.
func WithBreaker(b *govern.Breaker) Option {
	return func(s *Server) { s.breaker = b }
}

// WithQueryBudget attaches a fresh resource budget to every /query; the
// kernel charges rows, group cells and wide-path bytes against it and a
// crossed ceiling answers 422. nil budgets from the factory are
// unlimited.
func WithQueryBudget(newBudget func() *govern.Budget) Option {
	return func(s *Server) { s.newBudget = newBudget }
}

// WithHealthTimeout bounds a deep health probe (/healthz?deep=1); a
// probe that cannot finish in time answers 503 "probe timed out" rather
// than hanging the health endpoint on a wedged store. 0 disables the
// bound. Default 1s.
func WithHealthTimeout(d time.Duration) Option {
	return func(s *Server) { s.healthTimeout = d }
}

// Server wraps a platform with an http.Handler. The platform must have
// its warehouse built before any /query arrives.
type Server struct {
	platform      Platform
	mux           *http.ServeMux
	queryTimeout  time.Duration
	healthTimeout time.Duration
	maxBody       int64
	log           *log.Logger
	tracer        *obs.Tracer
	admission     *govern.Admission
	breaker       *govern.Breaker
	newBudget     func() *govern.Budget

	// routes records every registered mux pattern so tests (and the
	// router's classification table) can be checked for drift against
	// the real endpoint set.
	routes []string

	inflight sync.WaitGroup
	drainMu  sync.Mutex
	draining bool

	// shutdownCtx is cancelled when a drain deadline expires, reaching
	// every in-flight query context so cooperative kernels unwind.
	shutdownCtx    context.Context
	shutdownCancel context.CancelFunc
}

// New creates a server over a platform.
func New(p Platform, opts ...Option) *Server {
	s := &Server{
		platform:      p,
		mux:           http.NewServeMux(),
		queryTimeout:  30 * time.Second,
		healthTimeout: time.Second,
		maxBody:       1 << 20,
		log:           log.Default(),
		tracer:        obs.NewTracer(128),
	}
	s.shutdownCtx, s.shutdownCancel = context.WithCancel(context.Background())
	for _, o := range opts {
		o(s)
	}
	s.handle("GET /healthz", http.HandlerFunc(s.handleHealth))
	s.handle("GET /schema", http.HandlerFunc(s.handleSchema))
	s.handle("POST /query", http.HandlerFunc(s.handleQuery))
	s.handle("POST /sql", http.HandlerFunc(s.handleSQL))
	s.handle("POST /flatquery", http.HandlerFunc(s.handleFlatQuery))
	s.handle("GET /freshness", http.HandlerFunc(s.handleFreshness))
	s.handle("GET /replication", http.HandlerFunc(s.handleReplication))
	s.handle("POST /promote", http.HandlerFunc(s.handlePromote))
	s.handle("GET /findings", http.HandlerFunc(s.handleFindingsSearch))
	s.handle("POST /findings", http.HandlerFunc(s.handleFindingsAdd))
	s.handle("POST /findings/reinforce", http.HandlerFunc(s.handleFindingsReinforce))
	s.handle("GET /metrics", obs.Default().Handler())
	s.handle("GET /debug/traces", s.tracer.Handler())
	return s
}

// handle registers a route and records its pattern; every mux
// registration must go through here so Routes stays the single source
// of truth for the endpoint set.
func (s *Server) handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
	s.routes = append(s.routes, pattern)
}

// Routes lists the registered mux patterns ("METHOD /path"). The
// route-label drift test and the routing front's classification checks
// are built on it.
func (s *Server) Routes() []string {
	out := make([]string, len(s.routes))
	copy(out, s.routes)
	return out
}

// ServeHTTP implements http.Handler: admission control (draining answers
// 503), in-flight accounting for Shutdown, request metrics, body caps
// and panic recovery around the routed handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	route := routeLabel(r.URL.Path)
	sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK, route: route}
	start := time.Now()
	defer func() {
		metricRequests.WithLabelValues(route, strconv.Itoa(sr.status)).Inc()
		metricRequestSeconds.WithLabelValues(route).ObserveSince(start)
	}()

	s.drainMu.Lock()
	if s.draining {
		s.drainMu.Unlock()
		s.writeShed(sr, http.StatusServiceUnavailable, retryAfterDrain, "server shutting down")
		return
	}
	s.inflight.Add(1)
	s.drainMu.Unlock()
	defer s.inflight.Done()
	metricInflight.Add(1)
	defer metricInflight.Add(-1)

	defer func() {
		if rec := recover(); rec != nil {
			metricPanics.Inc()
			s.log.Printf("server: panic serving %s %s: %v", r.Method, r.URL.Path, rec)
			// Best effort: if the handler already wrote a status this is a
			// no-op on the status line, but the client still gets closed.
			s.writeError(sr, http.StatusInternalServerError, "internal error")
		}
	}()
	if r.Body != nil && r.Method == http.MethodPost {
		r.Body = http.MaxBytesReader(sr, r.Body, s.maxBody)
	}
	s.mux.ServeHTTP(sr, r)
}

// errShuttingDown is the cancellation cause stamped on in-flight query
// contexts when a drain deadline expires.
var errShuttingDown = errors.New("server shutting down")

// Shutdown stops admitting requests and waits for in-flight ones to
// drain, or for ctx to expire. An expired drain is not a hang: every
// in-flight query's context is cancelled (the cancellation reaches the
// execution kernel, which stops scanning within one check interval) and
// the context's error is returned so callers know the drain was cut
// short.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.shutdownCancel()
		return nil
	case <-ctx.Done():
		// The polite drain expired: cut in-flight queries loose. They
		// answer 503 and release their admission slots; the caller's
		// <-done (or process exit) follows within a cancellation check
		// interval, not a full query duration.
		s.shutdownCancel()
		return fmt.Errorf("server: shutdown drain interrupted: %w", ctx.Err())
	}
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// writeJSON encodes v as the response. Encoding can fail midway (a broken
// client connection, an unencodable value); by then the status line is
// gone, so the failure is logged rather than silently dropped. Server
// errors are counted here so 5xx rates show up in /metrics no matter
// which handler produced them.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	if status >= 500 {
		route := "other"
		if sr, ok := w.(*statusRecorder); ok {
			route = sr.route
		}
		metricErrors.WithLabelValues(route, strconv.Itoa(status)).Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Printf("server: writing %d response: %v", status, err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// Retry-After values (seconds) for the shed paths. The exact numbers
// matter less than the contract: every capacity refusal (429/503)
// carries the header, so a well-behaved client herd converges instead
// of hammering.
const (
	// retryAfterBurst: the refusal was instantaneous (full queue, open
	// breaker); a slot may free up almost immediately.
	retryAfterBurst = 1
	// retryAfterQueueWait: the request already waited a full queue
	// patience; retrying sooner than that would just queue again.
	retryAfterQueueWait = 2
	// retryAfterDrain: the process is shutting down; give a replacement
	// time to come up before retrying here.
	retryAfterDrain = 5
)

// writeShed answers a load-shedding refusal. Every 429/503 shed
// response goes through here so Retry-After is set on all of them —
// including the drain and shutdown paths — never just the admission
// ones.
func (s *Server) writeShed(w http.ResponseWriter, status, retryAfterSeconds int, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	s.writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// decodeBody decodes a JSON POST body into v, answering 413 (body over
// the configured cap) or 400 (malformed JSON) itself. It reports
// whether the handler may proceed.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		s.writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

// handleHealth is liveness; with ?deep=1 it also reports readiness: the
// warehouse must be built and the OLTP store open and un-poisoned, so ops
// can tell "process up" from "able to serve". The deep probe honours the
// request context and its own short bound (WithHealthTimeout): a store
// wedged mid-commit answers 503 "probe timed out" within the bound
// instead of holding the health endpoint — and the ops dashboards
// polling it — hostage.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("deep") == "" {
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		return
	}
	ctx := r.Context()
	if s.healthTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.healthTimeout)
		defer cancel()
	}
	type probe struct {
		doc    map[string]string
		status int
	}
	ch := make(chan probe, 1)
	go func() {
		defer func() {
			if rec := recover(); rec != nil {
				ch <- probe{map[string]string{"status": "degraded", "probe": fmt.Sprint(rec)}, http.StatusServiceUnavailable}
			}
		}()
		doc := map[string]string{"status": "ok", "warehouse": "ready", "store": "open"}
		status := http.StatusOK
		if s.platform.Warehouse() == nil {
			doc["status"], doc["warehouse"] = "degraded", "not built"
			status = http.StatusServiceUnavailable
		}
		var err error
		// The bounded check means a wedged WAL mutex cannot pin this
		// goroutine past the probe deadline.
		if st := s.platform.Store(); st == nil {
			err = errors.New("not opened")
		} else {
			err = st.HealthyBounded(ctx)
		}
		if err != nil {
			doc["status"], doc["store"] = "degraded", err.Error()
			status = http.StatusServiceUnavailable
		}
		ch <- probe{doc, status}
	}()
	select {
	case p := <-ch:
		s.writeJSON(w, p.status, p.doc)
	case <-ctx.Done():
		s.writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "degraded", "probe": "timed out"})
	}
}

// schemaDoc is the JSON form of the star schema.
type schemaDoc struct {
	Fact       string         `json:"fact"`
	Facts      int            `json:"fact_rows"`
	Measures   []string       `json:"measures"`
	Dimensions []dimensionDoc `json:"dimensions"`
}

type dimensionDoc struct {
	Name        string         `json:"name"`
	Members     int            `json:"members"`
	Attributes  []string       `json:"attributes"`
	Hierarchies []hierarchyDoc `json:"hierarchies,omitempty"`
}

type hierarchyDoc struct {
	Name   string   `json:"name"`
	Levels []string `json:"levels"`
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	ws := s.platform.Warehouse()
	if ws == nil {
		s.writeError(w, http.StatusServiceUnavailable, "warehouse not built")
		return
	}
	doc := schemaDoc{Fact: ws.Name, Facts: ws.Fact().Len()}
	for _, f := range ws.Fact().Measures().Fields() {
		doc.Measures = append(doc.Measures, f.Name)
	}
	for _, d := range ws.Dimensions() {
		dd := dimensionDoc{Name: d.Name(), Members: d.Len(), Attributes: d.Schema().Names()}
		for _, h := range d.Hierarchies() {
			dd.Hierarchies = append(dd.Hierarchies, hierarchyDoc{Name: h.Name, Levels: h.Levels})
		}
		doc.Dimensions = append(doc.Dimensions, dd)
	}
	s.writeJSON(w, http.StatusOK, doc)
}

// queryRequest is the /query body.
type queryRequest struct {
	MDX string `json:"mdx"`
}

// cellSetDoc is the JSON form of a query result. Trace is attached only
// when the request asked for ?trace=1.
type cellSetDoc struct {
	RowHeaders []string      `json:"row_headers"`
	ColHeaders []string      `json:"col_headers"`
	Cells      [][]any       `json:"cells"` // numbers, or null for NA
	Measure    string        `json:"measure"`
	Trace      *obs.TraceDoc `json:"trace,omitempty"`
}

func cellSetToDoc(cs *cube.CellSet) cellSetDoc {
	doc := cellSetDoc{Measure: cs.Measure.String()}
	for i := 0; i < cs.Rows(); i++ {
		doc.RowHeaders = append(doc.RowHeaders, cs.RowLabel(i))
	}
	for j := 0; j < cs.Columns(); j++ {
		doc.ColHeaders = append(doc.ColHeaders, cs.ColLabel(j))
	}
	doc.Cells = make([][]any, cs.Rows())
	for i := 0; i < cs.Rows(); i++ {
		doc.Cells[i] = make([]any, cs.Columns())
		for j := 0; j < cs.Columns(); j++ {
			cell := cs.Cell(i, j)
			if cell.IsNA() {
				doc.Cells[i][j] = nil
				continue
			}
			if f, ok := cell.AsFloat(); ok {
				doc.Cells[i][j] = f
			} else {
				doc.Cells[i][j] = cell.String()
			}
		}
	}
	return doc
}

// errQueryPanic marks evaluator panics so they answer 500, not 400.
var errQueryPanic = fmt.Errorf("query panicked")

// statusClientClosedRequest is nginx's conventional code for "the client
// went away before the response": the cancelled evaluation is accounted
// distinctly from timeouts in request metrics, even though nobody reads
// the body.
const statusClientClosedRequest = 499

// evalQuery dispatches one MDX evaluation to the richest surface the
// platform offers. Context-aware surfaces are preferred — they make the
// query actually cancellable — with graceful fallback for platforms (or
// test doubles) that only implement the plain interface.
func (s *Server) evalQuery(ctx context.Context, src string, wantTrace bool, root *obs.Span) (*cube.CellSet, error) {
	if wantTrace {
		if tq, ok := s.platform.(TracedCtxQuerier); ok {
			return tq.QueryMDXTracedCtx(ctx, src, root)
		}
		if tq, ok := s.platform.(TracedQuerier); ok {
			return tq.QueryMDXTraced(src, root)
		}
	}
	if cq, ok := s.platform.(CtxQuerier); ok {
		return cq.QueryMDXCtx(ctx, src)
	}
	return s.platform.QueryMDX(src)
}

// governedEval is one query-shaped evaluation running under the
// governance pipeline: it returns the 200 response document, or an
// error the shared status mapping in runGoverned translates.
type governedEval func(ctx context.Context) (any, error)

// safeEval runs eval with panic containment: an evaluator bug answers
// 500 (and counts as a breaker failure) without unwinding the whole
// request path.
func safeEval(ctx context.Context, eval governedEval) (doc any, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			doc, err = nil, fmt.Errorf("%w: %v", errQueryPanic, rec)
		}
	}()
	return eval(ctx)
}

// runGoverned runs one evaluation under the full governance pipeline:
// admission (concurrency gate + bounded FIFO queue), circuit breaker,
// per-query budget, then a cancellable inline evaluation. Every
// query-shaped endpoint (/query, /sql, /flatquery) shares this path,
// so the governance contract — 429/503 shed with Retry-After, 422
// budget trips, 504 cancelled timeouts, 499 vanished clients — holds
// uniformly across query languages. There is no side goroutine: when
// the deadline, the client or a shutdown cancels the context, the
// execution kernel itself stops scanning within one check interval and
// the admission slot is released immediately — under overload the
// server sheds (429/503) instead of stacking up zombie evaluations
// behind 504s.
func (s *Server) runGoverned(w http.ResponseWriter, r *http.Request, route string, eval governedEval) {
	// Admission first: a shed request must cost nothing downstream, and
	// the breaker's half-open probe accounting requires that every
	// successful Allow is matched by a recorded outcome.
	if s.admission != nil {
		release, err := s.admission.Acquire(r.Context())
		if err != nil {
			switch {
			case errors.Is(err, govern.ErrQueueFull):
				s.writeShed(w, http.StatusTooManyRequests, retryAfterBurst, "%v", err)
			case errors.Is(err, govern.ErrWaitTimeout):
				s.writeShed(w, http.StatusServiceUnavailable, retryAfterQueueWait, "%v", err)
			default: // the client gave up while queued
				s.writeError(w, statusClientClosedRequest, "client closed request while queued")
			}
			return
		}
		defer release()
	}

	if s.breaker != nil {
		if err := s.breaker.Allow(); err != nil {
			s.writeShed(w, http.StatusServiceUnavailable, retryAfterBurst, "%v", err)
			return
		}
	}
	// The breaker saw this query: exactly one outcome must be recorded,
	// even if the evaluation below panics. failed stays true only for
	// server-side faults (panic, timeout); client errors, cancellations
	// and budget trips do not indict the backend.
	failed := true
	defer func() {
		if s.breaker == nil {
			return
		}
		if failed {
			s.breaker.RecordFailure()
		} else {
			s.breaker.RecordSuccess()
		}
	}()

	// The query context: the request context (client disconnect), a
	// shutdown hook (expired drains cancel in-flight work), the query
	// timeout, and the per-query budget, layered in that order.
	ctx, cancel := context.WithCancelCause(r.Context())
	defer cancel(nil)
	stopShutdownHook := context.AfterFunc(s.shutdownCtx, func() { cancel(errShuttingDown) })
	defer stopShutdownHook()
	if s.queryTimeout > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeout(ctx, s.queryTimeout)
		defer cancelTimeout()
	}
	if s.newBudget != nil {
		ctx = govern.WithBudget(ctx, s.newBudget())
	}

	doc, err := safeEval(ctx, eval)
	switch {
	case err == nil:
		failed = false
		s.writeJSON(w, http.StatusOK, doc)
	case errors.Is(err, errQueryPanic):
		s.log.Printf("server: %s: %v", route, err)
		s.writeError(w, http.StatusInternalServerError, "%v", err)
	case errors.Is(err, govern.ErrBudgetExceeded):
		failed = false
		s.writeError(w, http.StatusUnprocessableEntity, "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		govern.CountCancelled("deadline")
		s.log.Printf("server: %s cancelled: %v", route, err)
		s.writeError(w, http.StatusGatewayTimeout, "query timed out after %s", s.queryTimeout)
	case errors.Is(err, context.Canceled):
		failed = false
		if errors.Is(context.Cause(ctx), errShuttingDown) {
			govern.CountCancelled("shutdown")
			s.writeShed(w, http.StatusServiceUnavailable, retryAfterDrain, "server shutting down")
			return
		}
		govern.CountCancelled("client_gone")
		s.writeError(w, statusClientClosedRequest, "client closed request")
	default:
		failed = false
		s.writeError(w, http.StatusBadRequest, "%v", err)
	}
}

// handleQuery runs one MDX query under the governance pipeline (see
// runGoverned).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.MDX == "" {
		s.writeError(w, http.StatusBadRequest, "missing mdx field")
		return
	}

	// Tracing is opt-in per request. The platform's traced surface is
	// consulted only for traced requests, so test doubles overriding
	// QueryMDX keep intercepting everything else.
	wantTrace := r.URL.Query().Get("trace") == "1"
	s.runGoverned(w, r, "/query", func(ctx context.Context) (any, error) {
		tr := s.tracer.StartTrace("query")
		tr.Root().Annotate("mdx", req.MDX)
		defer tr.Finish() // also on panic, so the ring keeps the partial trace
		cs, err := s.evalQuery(ctx, req.MDX, wantTrace, tr.Root())
		if err != nil {
			return nil, err
		}
		doc := cellSetToDoc(cs)
		if wantTrace && tr != nil {
			td := tr.Doc()
			doc.Trace = &td
		}
		return doc, nil
	})
}

// handleFreshness reports how far the warehouse trails the OLTP store.
// 404 (not 5xx) when the platform is not following: a batch-mode server
// is healthy, it just has no lag to report.
func (s *Server) handleFreshness(w http.ResponseWriter, r *http.Request) {
	fr, ok := s.platform.(FreshnessReporter)
	if !ok {
		s.writeError(w, http.StatusNotFound, "platform does not report freshness")
		return
	}
	f, following := fr.Freshness()
	if !following {
		s.writeError(w, http.StatusNotFound, "not in follow mode")
		return
	}
	s.writeJSON(w, http.StatusOK, f)
}

// handleReplication reports WAL-shipping health: the primary's
// per-follower lag, or a replica's connection state and cursor. 404
// (not 5xx) when no replication role is attached — a standalone server
// is healthy, it just has nothing to report.
func (s *Server) handleReplication(w http.ResponseWriter, r *http.Request) {
	rr, ok := s.platform.(ReplicationReporter)
	if !ok {
		s.writeError(w, http.StatusNotFound, "platform does not report replication")
		return
	}
	st, attached := rr.Replication()
	if !attached {
		s.writeError(w, http.StatusNotFound, "replication not attached")
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

// promoteRequest is the POST /promote body: the address the new
// primary's replication listener binds for re-homing followers.
type promoteRequest struct {
	Listen string `json:"listen"`
}

// handlePromote cuts a replica over to primary (see core.Promote): stop
// following, verify the local WAL tail, leave replica mode and start a
// replication listener at the next epoch. 409 (not 5xx) when the node
// is not a promotable replica — asking the wrong node is an operator
// error, not a server fault. Deliberately not proxied by the routing
// front: promotion targets one specific node.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	pr, ok := s.platform.(Promoter)
	if !ok {
		s.writeError(w, http.StatusNotFound, "platform does not support promotion")
		return
	}
	var req promoteRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Listen == "" {
		if d, ok := s.platform.(PromoteListenDefaulter); ok {
			req.Listen = d.PromoteListenAddr()
		}
	}
	if req.Listen == "" {
		s.writeError(w, http.StatusBadRequest, "listen address required (where the new primary ships its WAL from)")
		return
	}
	st, err := pr.PromoteToPrimary(req.Listen)
	if err != nil {
		s.writeError(w, http.StatusConflict, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleFindingsSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	s.writeJSON(w, http.StatusOK, s.platform.KB().Search(q))
}

// findingRequest is the POST /findings body.
type findingRequest struct {
	Topic     string `json:"topic"`
	Statement string `json:"statement"`
	Source    string `json:"source"`
}

func (s *Server) handleFindingsAdd(w http.ResponseWriter, r *http.Request) {
	var req findingRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	id, err := s.platform.RecordFinding(req.Topic, req.Statement, req.Source)
	if err != nil {
		if errors.Is(err, oltp.ErrReplica) {
			s.writeError(w, http.StatusConflict, "%v", err)
			return
		}
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

// reinforceRequest is the POST /findings/reinforce body.
type reinforceRequest struct {
	ID string `json:"id"`
}

func (s *Server) handleFindingsReinforce(w http.ResponseWriter, r *http.Request) {
	var req reinforceRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	reinforce := s.platform.KB().Reinforce
	if fr, ok := s.platform.(FindingsReinforcer); ok {
		reinforce = fr.ReinforceFinding
	}
	if err := reinforce(req.ID); err != nil {
		if errors.Is(err, oltp.ErrReplica) {
			s.writeError(w, http.StatusConflict, "%v", err)
			return
		}
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	f, err := s.platform.KB().Get(req.ID)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, f)
}
