// Package server exposes a DD-DGMS platform over HTTP/JSON — the
// "service model" phase of clinical decision support the paper's
// introduction describes (Wright & Sittig's fourth architecture phase):
// the clinical information system and the decision-support system are
// separated, communicating through service interfaces, so departments,
// hospitals and research groups can share one warehouse.
//
// Endpoints:
//
//	GET  /healthz            liveness
//	GET  /schema             the star schema: dimensions, attributes, hierarchies, measures
//	POST /query              {"mdx": "SELECT ..."} -> cell set as JSON
//	GET  /findings?q=term    knowledge-base search
//	POST /findings           {"topic","statement","source"} -> recorded finding id
//	POST /findings/reinforce {"id"} -> evidence added (promotes at threshold)
package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"github.com/ddgms/ddgms/internal/core"
	"github.com/ddgms/ddgms/internal/cube"
)

// Server wraps a platform with an http.Handler. The platform must have
// its warehouse built before any /query arrives.
type Server struct {
	platform *core.Platform
	mux      *http.ServeMux
}

// New creates a server over a platform.
func New(p *core.Platform) *Server {
	s := &Server{platform: p, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /schema", s.handleSchema)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("GET /findings", s.handleFindingsSearch)
	s.mux.HandleFunc("POST /findings", s.handleFindingsAdd)
	s.mux.HandleFunc("POST /findings/reinforce", s.handleFindingsReinforce)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// schemaDoc is the JSON form of the star schema.
type schemaDoc struct {
	Fact       string         `json:"fact"`
	Facts      int            `json:"fact_rows"`
	Measures   []string       `json:"measures"`
	Dimensions []dimensionDoc `json:"dimensions"`
}

type dimensionDoc struct {
	Name        string         `json:"name"`
	Members     int            `json:"members"`
	Attributes  []string       `json:"attributes"`
	Hierarchies []hierarchyDoc `json:"hierarchies,omitempty"`
}

type hierarchyDoc struct {
	Name   string   `json:"name"`
	Levels []string `json:"levels"`
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	ws := s.platform.Warehouse()
	if ws == nil {
		writeError(w, http.StatusServiceUnavailable, "warehouse not built")
		return
	}
	doc := schemaDoc{Fact: ws.Name, Facts: ws.Fact().Len()}
	for _, f := range ws.Fact().Measures().Fields() {
		doc.Measures = append(doc.Measures, f.Name)
	}
	for _, d := range ws.Dimensions() {
		dd := dimensionDoc{Name: d.Name(), Members: d.Len(), Attributes: d.Schema().Names()}
		for _, h := range d.Hierarchies() {
			dd.Hierarchies = append(dd.Hierarchies, hierarchyDoc{Name: h.Name, Levels: h.Levels})
		}
		doc.Dimensions = append(doc.Dimensions, dd)
	}
	writeJSON(w, http.StatusOK, doc)
}

// queryRequest is the /query body.
type queryRequest struct {
	MDX string `json:"mdx"`
}

// cellSetDoc is the JSON form of a query result.
type cellSetDoc struct {
	RowHeaders []string `json:"row_headers"`
	ColHeaders []string `json:"col_headers"`
	Cells      [][]any  `json:"cells"` // numbers, or null for NA
	Measure    string   `json:"measure"`
}

func cellSetToDoc(cs *cube.CellSet) cellSetDoc {
	doc := cellSetDoc{Measure: cs.Measure.String()}
	for i := 0; i < cs.Rows(); i++ {
		doc.RowHeaders = append(doc.RowHeaders, cs.RowLabel(i))
	}
	for j := 0; j < cs.Columns(); j++ {
		doc.ColHeaders = append(doc.ColHeaders, cs.ColLabel(j))
	}
	doc.Cells = make([][]any, cs.Rows())
	for i := 0; i < cs.Rows(); i++ {
		doc.Cells[i] = make([]any, cs.Columns())
		for j := 0; j < cs.Columns(); j++ {
			cell := cs.Cell(i, j)
			if cell.IsNA() {
				doc.Cells[i][j] = nil
				continue
			}
			if f, ok := cell.AsFloat(); ok {
				doc.Cells[i][j] = f
			} else {
				doc.Cells[i][j] = cell.String()
			}
		}
	}
	return doc
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.MDX == "" {
		writeError(w, http.StatusBadRequest, "missing mdx field")
		return
	}
	cs, err := s.platform.QueryMDX(req.MDX)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, cellSetToDoc(cs))
}

func (s *Server) handleFindingsSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	writeJSON(w, http.StatusOK, s.platform.KB().Search(q))
}

// findingRequest is the POST /findings body.
type findingRequest struct {
	Topic     string `json:"topic"`
	Statement string `json:"statement"`
	Source    string `json:"source"`
}

func (s *Server) handleFindingsAdd(w http.ResponseWriter, r *http.Request) {
	var req findingRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	id, err := s.platform.RecordFinding(req.Topic, req.Statement, req.Source)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

// reinforceRequest is the POST /findings/reinforce body.
type reinforceRequest struct {
	ID string `json:"id"`
}

func (s *Server) handleFindingsReinforce(w http.ResponseWriter, r *http.Request) {
	var req reinforceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if err := s.platform.KB().Reinforce(req.ID); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	f, err := s.platform.KB().Get(req.ID)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, f)
}
