// Package server exposes a DD-DGMS platform over HTTP/JSON — the
// "service model" phase of clinical decision support the paper's
// introduction describes (Wright & Sittig's fourth architecture phase):
// the clinical information system and the decision-support system are
// separated, communicating through service interfaces, so departments,
// hospitals and research groups can share one warehouse.
//
// Endpoints:
//
//	GET  /healthz            liveness; ?deep=1 adds readiness (warehouse built, OLTP store open)
//	GET  /schema             the star schema: dimensions, attributes, hierarchies, measures
//	POST /query              {"mdx": "SELECT ..."} -> cell set as JSON; ?trace=1 attaches a span tree
//	GET  /freshness          follow-mode lag: transactions and wall-clock behind the OLTP store
//	GET  /findings?q=term    knowledge-base search
//	POST /findings           {"topic","statement","source"} -> recorded finding id
//	POST /findings/reinforce {"id"} -> evidence added (promotes at threshold)
//	GET  /metrics            Prometheus text exposition of every subsystem's counters
//	GET  /debug/traces       ring buffer of recent query traces as JSON
//
// The handler degrades gracefully rather than falling over: every request
// runs under panic recovery (a handler bug answers 500 JSON, not a dropped
// connection), POST bodies are size-capped, /query is bounded by a
// per-request timeout (a wedged or slow cube answers 504 instead of
// holding the connection forever), and Shutdown drains in-flight queries
// before the process exits.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/ddgms/ddgms/internal/cube"
	"github.com/ddgms/ddgms/internal/kb"
	"github.com/ddgms/ddgms/internal/obs"
	"github.com/ddgms/ddgms/internal/oltp"
	"github.com/ddgms/ddgms/internal/refresh"
	"github.com/ddgms/ddgms/internal/star"
)

// Platform is the surface the server needs from a DD-DGMS instance.
// *core.Platform satisfies it; tests substitute wrappers (e.g. a
// deliberately slow cube) to exercise degradation paths.
type Platform interface {
	Warehouse() *star.Schema
	QueryMDX(src string) (*cube.CellSet, error)
	KB() *kb.Base
	RecordFinding(topic, statement, source string) (string, error)
	Store() *oltp.Store
}

// FreshnessReporter is the optional platform surface behind /freshness.
// *core.Platform satisfies it; ok=false means the platform is not in
// follow mode (the endpoint answers 404).
type FreshnessReporter interface {
	Freshness() (refresh.Freshness, bool)
}

// TracedQuerier is the optional platform surface behind ?trace=1.
// It is checked only for traced requests, so a test wrapper that
// overrides QueryMDX (but embeds a type promoting QueryMDXTraced) still
// intercepts every untraced query.
type TracedQuerier interface {
	QueryMDXTraced(src string, sp *obs.Span) (*cube.CellSet, error)
}

// Option customises a Server.
type Option func(*Server)

// WithQueryTimeout bounds how long one /query may run; 0 disables the
// bound. Default 30s.
func WithQueryTimeout(d time.Duration) Option {
	return func(s *Server) { s.queryTimeout = d }
}

// WithMaxBodyBytes caps POST request bodies. Default 1 MiB.
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) { s.maxBody = n }
}

// WithLogger routes server diagnostics (panics, failed response writes)
// somewhere other than the process default logger.
func WithLogger(l *log.Logger) Option {
	return func(s *Server) { s.log = l }
}

// WithTracer substitutes the per-query tracer (default: a ring of the
// 128 most recent traces). Pass nil to disable query tracing entirely.
func WithTracer(t *obs.Tracer) Option {
	return func(s *Server) { s.tracer = t }
}

// Server wraps a platform with an http.Handler. The platform must have
// its warehouse built before any /query arrives.
type Server struct {
	platform     Platform
	mux          *http.ServeMux
	queryTimeout time.Duration
	maxBody      int64
	log          *log.Logger
	tracer       *obs.Tracer

	inflight sync.WaitGroup
	drainMu  sync.Mutex
	draining bool
}

// New creates a server over a platform.
func New(p Platform, opts ...Option) *Server {
	s := &Server{
		platform:     p,
		mux:          http.NewServeMux(),
		queryTimeout: 30 * time.Second,
		maxBody:      1 << 20,
		log:          log.Default(),
		tracer:       obs.NewTracer(128),
	}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /schema", s.handleSchema)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("GET /freshness", s.handleFreshness)
	s.mux.HandleFunc("GET /findings", s.handleFindingsSearch)
	s.mux.HandleFunc("POST /findings", s.handleFindingsAdd)
	s.mux.HandleFunc("POST /findings/reinforce", s.handleFindingsReinforce)
	s.mux.Handle("GET /metrics", obs.Default().Handler())
	s.mux.Handle("GET /debug/traces", s.tracer.Handler())
	return s
}

// ServeHTTP implements http.Handler: admission control (draining answers
// 503), in-flight accounting for Shutdown, request metrics, body caps
// and panic recovery around the routed handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	route := routeLabel(r.URL.Path)
	sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK, route: route}
	start := time.Now()
	defer func() {
		metricRequests.WithLabelValues(route, strconv.Itoa(sr.status)).Inc()
		metricRequestSeconds.WithLabelValues(route).ObserveSince(start)
	}()

	s.drainMu.Lock()
	if s.draining {
		s.drainMu.Unlock()
		s.writeError(sr, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	s.inflight.Add(1)
	s.drainMu.Unlock()
	defer s.inflight.Done()
	metricInflight.Add(1)
	defer metricInflight.Add(-1)

	defer func() {
		if rec := recover(); rec != nil {
			metricPanics.Inc()
			s.log.Printf("server: panic serving %s %s: %v", r.Method, r.URL.Path, rec)
			// Best effort: if the handler already wrote a status this is a
			// no-op on the status line, but the client still gets closed.
			s.writeError(sr, http.StatusInternalServerError, "internal error")
		}
	}()
	if r.Body != nil && r.Method == http.MethodPost {
		r.Body = http.MaxBytesReader(sr, r.Body, s.maxBody)
	}
	s.mux.ServeHTTP(sr, r)
}

// Shutdown stops admitting requests and waits for in-flight ones to
// drain, or for ctx to expire — the context's error is returned in that
// case so callers know the drain was cut short.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown drain interrupted: %w", ctx.Err())
	}
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// writeJSON encodes v as the response. Encoding can fail midway (a broken
// client connection, an unencodable value); by then the status line is
// gone, so the failure is logged rather than silently dropped. Server
// errors are counted here so 5xx rates show up in /metrics no matter
// which handler produced them.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	if status >= 500 {
		route := "other"
		if sr, ok := w.(*statusRecorder); ok {
			route = sr.route
		}
		metricErrors.WithLabelValues(route, strconv.Itoa(status)).Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Printf("server: writing %d response: %v", status, err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// handleHealth is liveness; with ?deep=1 it also reports readiness: the
// warehouse must be built and the OLTP store open and un-poisoned, so ops
// can tell "process up" from "able to serve".
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("deep") == "" {
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		return
	}
	doc := map[string]string{"status": "ok", "warehouse": "ready", "store": "open"}
	status := http.StatusOK
	if s.platform.Warehouse() == nil {
		doc["status"], doc["warehouse"] = "degraded", "not built"
		status = http.StatusServiceUnavailable
	}
	if st := s.platform.Store(); st == nil {
		doc["status"], doc["store"] = "degraded", "not opened"
		status = http.StatusServiceUnavailable
	} else if err := st.Healthy(); err != nil {
		doc["status"], doc["store"] = "degraded", err.Error()
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, doc)
}

// schemaDoc is the JSON form of the star schema.
type schemaDoc struct {
	Fact       string         `json:"fact"`
	Facts      int            `json:"fact_rows"`
	Measures   []string       `json:"measures"`
	Dimensions []dimensionDoc `json:"dimensions"`
}

type dimensionDoc struct {
	Name        string         `json:"name"`
	Members     int            `json:"members"`
	Attributes  []string       `json:"attributes"`
	Hierarchies []hierarchyDoc `json:"hierarchies,omitempty"`
}

type hierarchyDoc struct {
	Name   string   `json:"name"`
	Levels []string `json:"levels"`
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	ws := s.platform.Warehouse()
	if ws == nil {
		s.writeError(w, http.StatusServiceUnavailable, "warehouse not built")
		return
	}
	doc := schemaDoc{Fact: ws.Name, Facts: ws.Fact().Len()}
	for _, f := range ws.Fact().Measures().Fields() {
		doc.Measures = append(doc.Measures, f.Name)
	}
	for _, d := range ws.Dimensions() {
		dd := dimensionDoc{Name: d.Name(), Members: d.Len(), Attributes: d.Schema().Names()}
		for _, h := range d.Hierarchies() {
			dd.Hierarchies = append(dd.Hierarchies, hierarchyDoc{Name: h.Name, Levels: h.Levels})
		}
		doc.Dimensions = append(doc.Dimensions, dd)
	}
	s.writeJSON(w, http.StatusOK, doc)
}

// queryRequest is the /query body.
type queryRequest struct {
	MDX string `json:"mdx"`
}

// cellSetDoc is the JSON form of a query result. Trace is attached only
// when the request asked for ?trace=1.
type cellSetDoc struct {
	RowHeaders []string      `json:"row_headers"`
	ColHeaders []string      `json:"col_headers"`
	Cells      [][]any       `json:"cells"` // numbers, or null for NA
	Measure    string        `json:"measure"`
	Trace      *obs.TraceDoc `json:"trace,omitempty"`
}

func cellSetToDoc(cs *cube.CellSet) cellSetDoc {
	doc := cellSetDoc{Measure: cs.Measure.String()}
	for i := 0; i < cs.Rows(); i++ {
		doc.RowHeaders = append(doc.RowHeaders, cs.RowLabel(i))
	}
	for j := 0; j < cs.Columns(); j++ {
		doc.ColHeaders = append(doc.ColHeaders, cs.ColLabel(j))
	}
	doc.Cells = make([][]any, cs.Rows())
	for i := 0; i < cs.Rows(); i++ {
		doc.Cells[i] = make([]any, cs.Columns())
		for j := 0; j < cs.Columns(); j++ {
			cell := cs.Cell(i, j)
			if cell.IsNA() {
				doc.Cells[i][j] = nil
				continue
			}
			if f, ok := cell.AsFloat(); ok {
				doc.Cells[i][j] = f
			} else {
				doc.Cells[i][j] = cell.String()
			}
		}
	}
	return doc
}

// queryResult carries an MDX evaluation across the timeout boundary.
type queryResult struct {
	cs  *cube.CellSet
	err error
}

// errQueryPanic marks evaluator panics so they answer 500, not 400.
var errQueryPanic = fmt.Errorf("query panicked")

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.MDX == "" {
		s.writeError(w, http.StatusBadRequest, "missing mdx field")
		return
	}

	// Tracing is opt-in per request. The platform's traced surface is
	// consulted only for traced requests, so test doubles overriding
	// QueryMDX keep intercepting everything else.
	wantTrace := r.URL.Query().Get("trace") == "1"
	tr := s.tracer.StartTrace("query")
	tr.Root().Annotate("mdx", req.MDX)

	ctx := r.Context()
	if s.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.queryTimeout)
		defer cancel()
	}
	// The cube engine is a CPU-bound library without context plumbing, so
	// the bound is enforced at the service layer: evaluate on a side
	// goroutine and abandon it on timeout. The buffered channel lets an
	// abandoned evaluation finish and be collected without leaking a
	// goroutine forever.
	ch := make(chan queryResult, 1)
	go func() {
		defer func() {
			if rec := recover(); rec != nil {
				ch <- queryResult{err: fmt.Errorf("%w: %v", errQueryPanic, rec)}
			}
		}()
		var res queryResult
		if tq, ok := s.platform.(TracedQuerier); ok && wantTrace {
			res.cs, res.err = tq.QueryMDXTraced(req.MDX, tr.Root())
		} else {
			res.cs, res.err = s.platform.QueryMDX(req.MDX)
		}
		ch <- res
	}()

	select {
	case <-ctx.Done():
		tr.Finish()
		s.log.Printf("server: /query abandoned: %v", ctx.Err())
		s.writeError(w, http.StatusGatewayTimeout, "query timed out after %s", s.queryTimeout)
	case res := <-ch:
		tr.Finish()
		if errors.Is(res.err, errQueryPanic) {
			s.log.Printf("server: /query: %v", res.err)
			s.writeError(w, http.StatusInternalServerError, "%v", res.err)
			return
		}
		if res.err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", res.err)
			return
		}
		doc := cellSetToDoc(res.cs)
		if wantTrace && tr != nil {
			td := tr.Doc()
			doc.Trace = &td
		}
		s.writeJSON(w, http.StatusOK, doc)
	}
}

// handleFreshness reports how far the warehouse trails the OLTP store.
// 404 (not 5xx) when the platform is not following: a batch-mode server
// is healthy, it just has no lag to report.
func (s *Server) handleFreshness(w http.ResponseWriter, r *http.Request) {
	fr, ok := s.platform.(FreshnessReporter)
	if !ok {
		s.writeError(w, http.StatusNotFound, "platform does not report freshness")
		return
	}
	f, following := fr.Freshness()
	if !following {
		s.writeError(w, http.StatusNotFound, "not in follow mode")
		return
	}
	s.writeJSON(w, http.StatusOK, f)
}

func (s *Server) handleFindingsSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	s.writeJSON(w, http.StatusOK, s.platform.KB().Search(q))
}

// findingRequest is the POST /findings body.
type findingRequest struct {
	Topic     string `json:"topic"`
	Statement string `json:"statement"`
	Source    string `json:"source"`
}

func (s *Server) handleFindingsAdd(w http.ResponseWriter, r *http.Request) {
	var req findingRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	id, err := s.platform.RecordFinding(req.Topic, req.Statement, req.Source)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

// reinforceRequest is the POST /findings/reinforce body.
type reinforceRequest struct {
	ID string `json:"id"`
}

func (s *Server) handleFindingsReinforce(w http.ResponseWriter, r *http.Request) {
	var req reinforceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if err := s.platform.KB().Reinforce(req.ID); err != nil {
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	f, err := s.platform.KB().Get(req.ID)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, f)
}
