package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/ddgms/ddgms/internal/core"
	"github.com/ddgms/ddgms/internal/discri"
	"github.com/ddgms/ddgms/internal/kb"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	dcfg := discri.DefaultConfig()
	dcfg.Patients = 120
	p, err := core.NewDiScRiPlatform(core.Config{}, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(p))
	t.Cleanup(func() {
		ts.Close()
		p.Close()
	})
	return ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response of %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealth(t *testing.T) {
	ts := testServer(t)
	var body map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &body); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if body["status"] != "ok" {
		t.Errorf("body = %v", body)
	}
}

func TestSchema(t *testing.T) {
	ts := testServer(t)
	var doc schemaDoc
	if code := getJSON(t, ts.URL+"/schema", &doc); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if doc.Fact != "MedicalMeasures" || doc.Facts == 0 {
		t.Errorf("fact = %q (%d rows)", doc.Fact, doc.Facts)
	}
	if len(doc.Dimensions) != 8 {
		t.Errorf("dimensions = %d", len(doc.Dimensions))
	}
	foundHierarchy := false
	for _, d := range doc.Dimensions {
		if d.Name == "PersonalInformation" && len(d.Hierarchies) == 1 {
			foundHierarchy = true
		}
	}
	if !foundHierarchy {
		t.Error("Age hierarchy not exposed")
	}
}

func TestQuery(t *testing.T) {
	ts := testServer(t)
	var doc cellSetDoc
	code := postJSON(t, ts.URL+"/query", queryRequest{MDX: `
		SELECT {[PersonalInformation].[Gender].MEMBERS} ON COLUMNS
		FROM [MedicalMeasures] WHERE [Measures].[PatientCount]`}, &doc)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(doc.ColHeaders) != 2 {
		t.Errorf("columns = %v", doc.ColHeaders)
	}
	total := 0.0
	for _, row := range doc.Cells {
		for _, c := range row {
			if f, ok := c.(float64); ok {
				total += f
			}
		}
	}
	if total != 120 {
		t.Errorf("patient total = %g, want 120", total)
	}
}

func TestQueryErrors(t *testing.T) {
	ts := testServer(t)
	var errBody errorBody
	if code := postJSON(t, ts.URL+"/query", queryRequest{MDX: "SELECT nonsense"}, &errBody); code != http.StatusBadRequest {
		t.Errorf("bad MDX status = %d", code)
	}
	if errBody.Error == "" {
		t.Error("error body empty")
	}
	if code := postJSON(t, ts.URL+"/query", queryRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty MDX status = %d", code)
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON status = %d", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status = %d", resp.StatusCode)
	}
}

func TestFindingsLifecycle(t *testing.T) {
	ts := testServer(t)
	var created map[string]string
	code := postJSON(t, ts.URL+"/findings", findingRequest{
		Topic: "diabetes", Statement: "gender effect in 70-80", Source: "api",
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create status = %d", code)
	}
	id := created["id"]
	if id == "" {
		t.Fatal("no id returned")
	}
	// Search finds it.
	var hits []kb.Finding
	if code := getJSON(t, ts.URL+"/findings?q=gender", &hits); code != http.StatusOK {
		t.Fatalf("search status = %d", code)
	}
	if len(hits) != 1 || hits[0].ID != id {
		t.Errorf("search hits = %+v", hits)
	}
	// Reinforce twice -> established (default threshold 3).
	var f kb.Finding
	postJSON(t, ts.URL+"/findings/reinforce", reinforceRequest{ID: id}, nil)
	if code := postJSON(t, ts.URL+"/findings/reinforce", reinforceRequest{ID: id}, &f); code != http.StatusOK {
		t.Fatalf("reinforce status = %d", code)
	}
	if f.Status != kb.Established {
		t.Errorf("status after reinforcement = %s", f.Status)
	}
	// Unknown id.
	if code := postJSON(t, ts.URL+"/findings/reinforce", reinforceRequest{ID: "F9999"}, nil); code != http.StatusNotFound {
		t.Errorf("unknown id status = %d", code)
	}
	// Invalid finding.
	if code := postJSON(t, ts.URL+"/findings", findingRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty finding status = %d", code)
	}
}
