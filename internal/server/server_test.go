package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ddgms/ddgms/internal/core"
	"github.com/ddgms/ddgms/internal/cube"
	"github.com/ddgms/ddgms/internal/discri"
	"github.com/ddgms/ddgms/internal/kb"
	"github.com/ddgms/ddgms/internal/star"
)

func testPlatform(t *testing.T) *core.Platform {
	t.Helper()
	dcfg := discri.DefaultConfig()
	dcfg.Patients = 120
	p, err := core.NewDiScRiPlatform(core.Config{}, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func serveHandler(t *testing.T, h http.Handler) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	return serveHandler(t, New(testPlatform(t)))
}

// slowPlatform injects latency into the cube: what /query degradation
// looks like when an expensive or wedged evaluation holds the engine.
// The injected delay honours the query context, like the real kernel
// does, so cancellation tests exercise the cooperative path.
type slowPlatform struct {
	*core.Platform
	delay time.Duration
}

func (p *slowPlatform) QueryMDXCtx(ctx context.Context, src string) (*cube.CellSet, error) {
	select {
	case <-time.After(p.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return p.Platform.QueryMDXCtx(ctx, src)
}

func (p *slowPlatform) QueryMDX(src string) (*cube.CellSet, error) {
	return p.QueryMDXCtx(context.Background(), src)
}

// panicPlatform blows up in the evaluator or in the schema handler.
type panicPlatform struct {
	*core.Platform
	panicWarehouse bool
}

func (p *panicPlatform) QueryMDX(string) (*cube.CellSet, error) { panic("cube exploded") }

func (p *panicPlatform) QueryMDXCtx(context.Context, string) (*cube.CellSet, error) {
	panic("cube exploded")
}

func (p *panicPlatform) Warehouse() *star.Schema {
	if p.panicWarehouse {
		panic("schema exploded")
	}
	return p.Platform.Warehouse()
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response of %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealth(t *testing.T) {
	ts := testServer(t)
	var body map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &body); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if body["status"] != "ok" {
		t.Errorf("body = %v", body)
	}
}

func TestHealthDeep(t *testing.T) {
	p := testPlatform(t)
	ts := serveHandler(t, New(p))
	var body map[string]string
	if code := getJSON(t, ts.URL+"/healthz?deep=1", &body); code != http.StatusOK {
		t.Fatalf("deep status = %d (%v)", code, body)
	}
	if body["warehouse"] != "ready" || body["store"] != "open" {
		t.Errorf("deep body = %v", body)
	}
	// Closing the platform releases the store: liveness stays ok, deep
	// readiness flips to 503 — the distinction ops page on.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("liveness after close = %d", code)
	}
	if code := getJSON(t, ts.URL+"/healthz?deep=1", &body); code != http.StatusServiceUnavailable {
		t.Errorf("deep after close = %d (%v)", code, body)
	}
	if body["status"] != "degraded" {
		t.Errorf("deep body after close = %v", body)
	}
}

func TestQueryTimeout(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	p := &slowPlatform{Platform: testPlatform(t), delay: 300 * time.Millisecond}
	ts := serveHandler(t, New(p, WithQueryTimeout(30*time.Millisecond), WithLogger(quiet)))
	var errBody errorBody
	code := postJSON(t, ts.URL+"/query", queryRequest{MDX: `
		SELECT {[PersonalInformation].[Gender].MEMBERS} ON COLUMNS
		FROM [MedicalMeasures]`}, &errBody)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("slow query status = %d, want 504", code)
	}
	if !strings.Contains(errBody.Error, "timed out") {
		t.Errorf("error = %q", errBody.Error)
	}
}

func TestQueryPanicAnswers500(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	p := &panicPlatform{Platform: testPlatform(t)}
	ts := serveHandler(t, New(p, WithLogger(quiet)))
	var errBody errorBody
	code := postJSON(t, ts.URL+"/query", queryRequest{MDX: "SELECT x"}, &errBody)
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking query status = %d, want 500", code)
	}
	if !strings.Contains(errBody.Error, "panicked") {
		t.Errorf("error = %q", errBody.Error)
	}
	// The server survives and keeps answering.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz after panic = %d", code)
	}
}

func TestHandlerPanicRecovered(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	p := &panicPlatform{Platform: testPlatform(t), panicWarehouse: true}
	ts := serveHandler(t, New(p, WithLogger(quiet)))
	resp, err := http.Get(ts.URL + "/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler status = %d, want 500", resp.StatusCode)
	}
	var errBody errorBody
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil {
		t.Fatalf("500 body is not the JSON error envelope: %v", err)
	}
}

func TestPostBodyCapped(t *testing.T) {
	ts := serveHandler(t, New(testPlatform(t), WithMaxBodyBytes(128)))
	big := `{"mdx": "` + strings.Repeat("X", 4096) + `"}`
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d, want 413", resp.StatusCode)
	}
	// A normal-sized query still works.
	if code := postJSON(t, ts.URL+"/query", queryRequest{MDX: `
		SELECT {[PersonalInformation].[Gender].MEMBERS} ON COLUMNS
		FROM [MedicalMeasures]`}, nil); code != http.StatusOK {
		t.Errorf("normal body status = %d", code)
	}
}

func TestShutdownDrains(t *testing.T) {
	p := &slowPlatform{Platform: testPlatform(t), delay: 150 * time.Millisecond}
	srv := New(p, WithQueryTimeout(5*time.Second))
	ts := serveHandler(t, srv)

	var wg sync.WaitGroup
	wg.Add(1)
	var inflightCode int
	go func() {
		defer wg.Done()
		inflightCode = postJSON(t, ts.URL+"/query", queryRequest{MDX: `
			SELECT {[PersonalInformation].[Gender].MEMBERS} ON COLUMNS
			FROM [MedicalMeasures]`}, nil)
	}()
	time.Sleep(50 * time.Millisecond) // let the slow query get admitted

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	if inflightCode != http.StatusOK {
		t.Errorf("in-flight query during drain = %d, want 200", inflightCode)
	}
	// After the drain, new requests are refused.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("request after shutdown = %d, want 503", code)
	}
}

func TestShutdownDrainTimeout(t *testing.T) {
	p := &slowPlatform{Platform: testPlatform(t), delay: 500 * time.Millisecond}
	srv := New(p, WithQueryTimeout(5*time.Second))
	ts := serveHandler(t, srv)

	done := make(chan struct{})
	go func() {
		defer close(done)
		postJSON(t, ts.URL+"/query", queryRequest{MDX: "SELECT x"}, nil)
	}()
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Error("Shutdown with expired context reported a clean drain")
	}
	<-done
}

func TestSchema(t *testing.T) {
	ts := testServer(t)
	var doc schemaDoc
	if code := getJSON(t, ts.URL+"/schema", &doc); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if doc.Fact != "MedicalMeasures" || doc.Facts == 0 {
		t.Errorf("fact = %q (%d rows)", doc.Fact, doc.Facts)
	}
	if len(doc.Dimensions) != 8 {
		t.Errorf("dimensions = %d", len(doc.Dimensions))
	}
	foundHierarchy := false
	for _, d := range doc.Dimensions {
		if d.Name == "PersonalInformation" && len(d.Hierarchies) == 1 {
			foundHierarchy = true
		}
	}
	if !foundHierarchy {
		t.Error("Age hierarchy not exposed")
	}
}

func TestQuery(t *testing.T) {
	ts := testServer(t)
	var doc cellSetDoc
	code := postJSON(t, ts.URL+"/query", queryRequest{MDX: `
		SELECT {[PersonalInformation].[Gender].MEMBERS} ON COLUMNS
		FROM [MedicalMeasures] WHERE [Measures].[PatientCount]`}, &doc)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(doc.ColHeaders) != 2 {
		t.Errorf("columns = %v", doc.ColHeaders)
	}
	total := 0.0
	for _, row := range doc.Cells {
		for _, c := range row {
			if f, ok := c.(float64); ok {
				total += f
			}
		}
	}
	if total != 120 {
		t.Errorf("patient total = %g, want 120", total)
	}
}

func TestQueryErrors(t *testing.T) {
	ts := testServer(t)
	var errBody errorBody
	if code := postJSON(t, ts.URL+"/query", queryRequest{MDX: "SELECT nonsense"}, &errBody); code != http.StatusBadRequest {
		t.Errorf("bad MDX status = %d", code)
	}
	if errBody.Error == "" {
		t.Error("error body empty")
	}
	if code := postJSON(t, ts.URL+"/query", queryRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty MDX status = %d", code)
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON status = %d", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status = %d", resp.StatusCode)
	}
}

func TestFindingsLifecycle(t *testing.T) {
	ts := testServer(t)
	var created map[string]string
	code := postJSON(t, ts.URL+"/findings", findingRequest{
		Topic: "diabetes", Statement: "gender effect in 70-80", Source: "api",
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create status = %d", code)
	}
	id := created["id"]
	if id == "" {
		t.Fatal("no id returned")
	}
	// Search finds it.
	var hits []kb.Finding
	if code := getJSON(t, ts.URL+"/findings?q=gender", &hits); code != http.StatusOK {
		t.Fatalf("search status = %d", code)
	}
	if len(hits) != 1 || hits[0].ID != id {
		t.Errorf("search hits = %+v", hits)
	}
	// Reinforce twice -> established (default threshold 3).
	var f kb.Finding
	postJSON(t, ts.URL+"/findings/reinforce", reinforceRequest{ID: id}, nil)
	if code := postJSON(t, ts.URL+"/findings/reinforce", reinforceRequest{ID: id}, &f); code != http.StatusOK {
		t.Fatalf("reinforce status = %d", code)
	}
	if f.Status != kb.Established {
		t.Errorf("status after reinforcement = %s", f.Status)
	}
	// Unknown id.
	if code := postJSON(t, ts.URL+"/findings/reinforce", reinforceRequest{ID: "F9999"}, nil); code != http.StatusNotFound {
		t.Errorf("unknown id status = %d", code)
	}
	// Invalid finding.
	if code := postJSON(t, ts.URL+"/findings", findingRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty finding status = %d", code)
	}
}
