// Package star implements the dimensional data model at the core of the
// DD-DGMS architecture (paper Figs 1 and 3): dimensions composed of
// attributes and drill-down hierarchies, surrogate-keyed member tables, a
// fact table of dimension keys plus numeric measures, a star-schema
// builder and a loader that populates the warehouse from a flat
// (ETL-transformed) table.
//
// The paper's central argument is that this model's plasticity — the
// ability to add, remove and feed back dimensions without restructuring
// facts — is what enables multivariate decision guidance; the feedback
// API in this package implements the closed loop.
package star

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ddgms/ddgms/internal/storage"
	"github.com/ddgms/ddgms/internal/value"
)

// Key is a surrogate key into a dimension's member table.
type Key int32

// NoKey marks a fact whose dimension attributes were all missing.
const NoKey Key = -1

// Hierarchy is an ordered list of attribute names from coarsest to finest
// granularity; drill-down moves toward the end, roll-up toward the start.
// Example: the Age hierarchy ["AgeBand10", "AgeBand5"] supports the paper's
// Fig 5 drill-down from 10-year to 5-year age groups.
type Hierarchy struct {
	Name   string
	Levels []string
}

// Finer returns the attribute one level finer than attr, or "" when attr
// is already the finest level or absent from the hierarchy.
func (h Hierarchy) Finer(attr string) string {
	for i, l := range h.Levels {
		if l == attr && i+1 < len(h.Levels) {
			return h.Levels[i+1]
		}
	}
	return ""
}

// Coarser returns the attribute one level coarser than attr, or "" when
// attr is already the coarsest level or absent from the hierarchy.
func (h Hierarchy) Coarser(attr string) string {
	for i, l := range h.Levels {
		if l == attr && i > 0 {
			return h.Levels[i-1]
		}
	}
	return ""
}

// Dimension is one subject-area dimension: a surrogate-keyed table of
// member rows over a fixed attribute schema, with optional hierarchies.
type Dimension struct {
	name        string
	schema      *storage.Schema
	hierarchies []Hierarchy
	members     *storage.Table
	lookup      map[string]Key
	outriggers  map[string]*outriggerLink // snowflake links, by outrigger name
}

// NewDimension creates an empty dimension with the given attributes.
func NewDimension(name string, attrs []storage.Field, hierarchies ...Hierarchy) (*Dimension, error) {
	if name == "" {
		return nil, fmt.Errorf("star: dimension needs a name")
	}
	schema, err := storage.NewSchema(attrs...)
	if err != nil {
		return nil, fmt.Errorf("star: dimension %q: %w", name, err)
	}
	for _, h := range hierarchies {
		if len(h.Levels) < 2 {
			return nil, fmt.Errorf("star: dimension %q: hierarchy %q needs >= 2 levels", name, h.Name)
		}
		for _, l := range h.Levels {
			if _, ok := schema.Lookup(l); !ok {
				return nil, fmt.Errorf("star: dimension %q: hierarchy %q references unknown attribute %q", name, h.Name, l)
			}
		}
	}
	tbl, err := storage.NewTable(schema)
	if err != nil {
		return nil, err
	}
	return &Dimension{
		name:        name,
		schema:      schema,
		hierarchies: append([]Hierarchy(nil), hierarchies...),
		members:     tbl,
		lookup:      make(map[string]Key),
	}, nil
}

// Name returns the dimension name.
func (d *Dimension) Name() string { return d.name }

// Schema returns the attribute schema.
func (d *Dimension) Schema() *storage.Schema { return d.schema }

// Hierarchies returns the dimension's hierarchies.
func (d *Dimension) Hierarchies() []Hierarchy {
	return append([]Hierarchy(nil), d.hierarchies...)
}

// Hierarchy returns the named hierarchy.
func (d *Dimension) Hierarchy(name string) (Hierarchy, bool) {
	for _, h := range d.hierarchies {
		if h.Name == name {
			return h, true
		}
	}
	return Hierarchy{}, false
}

// Len reports the number of members.
func (d *Dimension) Len() int { return d.members.Len() }

// memberKey canonically encodes an attribute tuple.
func memberKey(attrs []value.Value) string {
	var sb strings.Builder
	for _, v := range attrs {
		fmt.Fprintf(&sb, "%d:%s\x00", v.Kind(), v.String())
	}
	return sb.String()
}

// AddMember interns an attribute tuple, returning the existing surrogate
// key when an identical member already exists (the loader relies on this
// dedup to keep dimensions compact).
func (d *Dimension) AddMember(attrs []value.Value) (Key, error) {
	if len(attrs) != d.schema.Len() {
		return NoKey, fmt.Errorf("star: dimension %q: member has %d attributes, schema has %d",
			d.name, len(attrs), d.schema.Len())
	}
	mk := memberKey(attrs)
	if k, ok := d.lookup[mk]; ok {
		return k, nil
	}
	if err := d.members.AppendRow(attrs); err != nil {
		return NoKey, fmt.Errorf("star: dimension %q: %w", d.name, err)
	}
	k := Key(d.members.Len() - 1)
	d.lookup[mk] = k
	return k, nil
}

// Member returns the attribute tuple for a key.
func (d *Dimension) Member(k Key) ([]value.Value, error) {
	if k < 0 || int(k) >= d.members.Len() {
		return nil, fmt.Errorf("star: dimension %q: key %d out of range", d.name, k)
	}
	return d.members.Row(int(k)), nil
}

// Attr returns one attribute of the member identified by k. Dotted names
// ("Outrigger.Attr") traverse an attached snowflake outrigger.
func (d *Dimension) Attr(k Key, attr string) (value.Value, error) {
	if v, handled, err := d.outriggerAttr(k, attr); handled {
		return v, err
	}
	if k < 0 || int(k) >= d.members.Len() {
		return value.NA(), fmt.Errorf("star: dimension %q: key %d out of range", d.name, k)
	}
	return d.members.Value(int(k), attr)
}

// HasAttr reports whether the name resolves to a plain attribute or a
// dotted outrigger attribute.
func (d *Dimension) HasAttr(attr string) bool {
	if _, ok := d.schema.Lookup(attr); ok {
		return true
	}
	return d.hasOutriggerAttr(attr)
}

// AttrKind returns the value kind of a plain or dotted attribute.
func (d *Dimension) AttrKind(attr string) (value.Kind, bool) {
	if j, ok := d.schema.Lookup(attr); ok {
		return d.schema.Field(j).Kind, true
	}
	if link, inner, ok := d.resolveOutrigger(attr); ok {
		if j, ok2 := link.rig.schema.Lookup(inner); ok2 {
			return link.rig.schema.Field(j).Kind, true
		}
	}
	return value.NAKind, false
}

// AttrValues returns the distinct non-NA values of a plain or dotted
// attribute across all members, sorted ascending. These are the "members
// of a level" exposed in OLAP queries.
func (d *Dimension) AttrValues(attr string) ([]value.Value, error) {
	if d.hasOutriggerAttr(attr) {
		seen := make(map[value.Value]struct{})
		var out []value.Value
		for k := 0; k < d.members.Len(); k++ {
			v, _, err := d.outriggerAttr(Key(k), attr)
			if err != nil {
				return nil, err
			}
			if v.IsNA() {
				continue
			}
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		sortValues(out)
		return out, nil
	}
	dist, err := d.members.Distinct(attr)
	if err != nil {
		return nil, fmt.Errorf("star: dimension %q: %w", d.name, err)
	}
	var out []value.Value
	for i := 0; i < dist.Len(); i++ {
		v := dist.MustValue(i, attr)
		if !v.IsNA() {
			out = append(out, v)
		}
	}
	return out, nil
}

func sortValues(vs []value.Value) {
	sort.Slice(vs, func(a, b int) bool { return vs[a].Less(vs[b]) })
}

// UpdateMember overwrites the attributes of an existing member in place —
// a type-1 slowly-changing-dimension update (history is not kept; every
// fact pointing at the key sees the new attributes).
func (d *Dimension) UpdateMember(k Key, attrs []value.Value) error {
	if k < 0 || int(k) >= d.members.Len() {
		return fmt.Errorf("star: dimension %q: key %d out of range", d.name, k)
	}
	if len(attrs) != d.schema.Len() {
		return fmt.Errorf("star: dimension %q: member has %d attributes, schema has %d",
			d.name, len(attrs), d.schema.Len())
	}
	old := d.members.Row(int(k))
	delete(d.lookup, memberKey(old))
	for j := 0; j < d.schema.Len(); j++ {
		if err := d.members.Set(int(k), d.schema.Field(j).Name, attrs[j]); err != nil {
			return err
		}
	}
	d.lookup[memberKey(attrs)] = k
	return nil
}

// VersionMember implements a type-2 slowly-changing-dimension change: the
// old member row is retained (so historical facts keep their original
// context) and a new member row with the new attributes is interned and
// returned for use by subsequent facts.
func (d *Dimension) VersionMember(attrs []value.Value) (Key, error) {
	return d.AddMember(attrs)
}
