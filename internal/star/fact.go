package star

import (
	"fmt"

	"github.com/ddgms/ddgms/internal/storage"
	"github.com/ddgms/ddgms/internal/value"
)

// FactTable holds one row per recorded clinical event (an attendance in
// the DiScRi trial): a surrogate key into every dimension plus the numeric
// measures. Keys are stored columnar for fast cube scans.
type FactTable struct {
	dimNames []string
	dimIdx   map[string]int
	keys     [][]Key
	measures *storage.Table
	n        int
	// Tombstones for incremental maintenance: columnar storage cannot
	// cheaply delete mid-table, so a superseded fact row (its OLTP source
	// was updated or deleted) is retired in place and every query path
	// masks it out. The live-mask is a word bitmap (bit set = retired) so
	// query filters mask 64 rows per AND-NOT instead of one per branch;
	// it is allocated lazily on the first retirement.
	dead  []uint64
	deadN int
}

// NewFactTable creates an empty fact table over the named dimensions and
// measure fields.
func NewFactTable(dimNames []string, measureFields []storage.Field) (*FactTable, error) {
	if len(dimNames) == 0 {
		return nil, fmt.Errorf("star: fact table needs at least one dimension")
	}
	idx := make(map[string]int, len(dimNames))
	for i, n := range dimNames {
		if _, dup := idx[n]; dup {
			return nil, fmt.Errorf("star: duplicate dimension %q in fact table", n)
		}
		idx[n] = i
	}
	for _, f := range measureFields {
		if f.Kind != value.IntKind && f.Kind != value.FloatKind && f.Kind != value.BoolKind {
			return nil, fmt.Errorf("star: measure %q must be numeric, got %v", f.Name, f.Kind)
		}
	}
	schema, err := storage.NewSchema(measureFields...)
	if err != nil {
		return nil, err
	}
	mt, err := storage.NewTable(schema)
	if err != nil {
		return nil, err
	}
	return &FactTable{
		dimNames: append([]string(nil), dimNames...),
		dimIdx:   idx,
		keys:     make([][]Key, len(dimNames)),
		measures: mt,
	}, nil
}

// Dimensions returns the dimension names in declaration order.
func (f *FactTable) Dimensions() []string {
	return append([]string(nil), f.dimNames...)
}

// Measures returns the measure schema.
func (f *FactTable) Measures() *storage.Schema { return f.measures.Schema() }

// Len reports the number of fact rows.
func (f *FactTable) Len() int { return f.n }

// Append adds one fact: a key per dimension (NoKey marks missing dimension
// context) and one value per measure.
func (f *FactTable) Append(keys map[string]Key, measures []value.Value) error {
	if len(keys) != len(f.dimNames) {
		return fmt.Errorf("star: fact has %d keys, table has %d dimensions", len(keys), len(f.dimNames))
	}
	for name := range keys {
		if _, ok := f.dimIdx[name]; !ok {
			return fmt.Errorf("star: fact references unknown dimension %q", name)
		}
	}
	if err := f.measures.AppendRow(measures); err != nil {
		return fmt.Errorf("star: fact measures: %w", err)
	}
	for name, i := range f.dimIdx {
		f.keys[i] = append(f.keys[i], keys[name])
	}
	if f.dead != nil && f.n>>6 >= len(f.dead) {
		f.dead = append(f.dead, 0)
	}
	f.n++
	return nil
}

// Retire tombstones fact row i: it stays physically present (keys and
// measures keep their ordinals) but every aggregate and drill-through
// must skip it. Retiring an already-retired row is a no-op, which makes
// at-least-once delta application idempotent.
func (f *FactTable) Retire(i int) error {
	if i < 0 || i >= f.n {
		return fmt.Errorf("star: fact row %d out of range", i)
	}
	if f.dead == nil {
		f.dead = make([]uint64, (f.n+63)/64)
	}
	if f.dead[i>>6]&(1<<(uint(i)&63)) == 0 {
		f.dead[i>>6] |= 1 << (uint(i) & 63)
		f.deadN++
	}
	return nil
}

// Alive reports whether fact row i has not been retired.
func (f *FactTable) Alive(i int) bool {
	return f.dead == nil || i < 0 || i>>6 >= len(f.dead) ||
		f.dead[i>>6]&(1<<(uint(i)&63)) == 0
}

// DeadWords exposes the tombstone bitmap words (bit set = retired, 64
// rows per word), nil when no row has ever been retired. Query layers
// use it to mask out retired facts word-wise; callers must not mutate
// it.
func (f *FactTable) DeadWords() []uint64 { return f.dead }

// LiveLen reports the number of non-retired fact rows.
func (f *FactTable) LiveLen() int { return f.n - f.deadN }

// RetiredCount reports how many fact rows are tombstoned. Zero means no
// masking is needed anywhere.
func (f *FactTable) RetiredCount() int { return f.deadN }

// Key returns the surrogate key of fact row i in the named dimension.
func (f *FactTable) Key(i int, dim string) (Key, error) {
	j, ok := f.dimIdx[dim]
	if !ok {
		return NoKey, fmt.Errorf("star: unknown dimension %q", dim)
	}
	if i < 0 || i >= f.n {
		return NoKey, fmt.Errorf("star: fact row %d out of range", i)
	}
	return f.keys[j][i], nil
}

// KeyColumn returns the whole key column for a dimension; cube
// construction scans these directly.
func (f *FactTable) KeyColumn(dim string) ([]Key, error) {
	j, ok := f.dimIdx[dim]
	if !ok {
		return nil, fmt.Errorf("star: unknown dimension %q", dim)
	}
	return f.keys[j], nil
}

// Measure returns measure column values for direct scanning.
func (f *FactTable) Measure(name string) (storage.Column, error) {
	return f.measures.Column(name)
}

// MeasureValue returns one measure cell.
func (f *FactTable) MeasureValue(i int, name string) (value.Value, error) {
	if i < 0 || i >= f.n {
		return value.NA(), fmt.Errorf("star: fact row %d out of range", i)
	}
	return f.measures.Value(i, name)
}
