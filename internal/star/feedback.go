package star

import (
	"fmt"

	"github.com/ddgms/ddgms/internal/storage"
	"github.com/ddgms/ddgms/internal/value"
)

// The paper's closed loop: "Further dimensions are introduced to capture
// user feedback. Information on aggregates and trends derived by clinicians
// as well as clinical outcomes can be translated back to the warehouse as
// dimensions to be used in future analysis." AddFeedbackDimension grafts a
// new dimension onto an existing schema and tags every fact through a
// classifier function, without touching the original dimensions or
// measures.

// FactClassifier assigns fact row i to a feedback-dimension member (by
// attribute tuple). Returning nil marks the fact as having no feedback
// context (NoKey).
type FactClassifier func(s *Schema, factRow int) ([]value.Value, error)

// AddFeedbackDimension creates a dimension named name with the given
// attributes, classifies every existing fact with classify, and attaches
// the resulting key column to the fact table. Subsequent cube builds see
// the feedback dimension exactly like a load-time dimension.
func (s *Schema) AddFeedbackDimension(name string, attrs []storage.Field, classify FactClassifier) error {
	if _, dup := s.dims[name]; dup {
		return fmt.Errorf("star: dimension %q already exists", name)
	}
	d, err := NewDimension(name, attrs)
	if err != nil {
		return err
	}
	keys := make([]Key, s.fact.Len())
	for i := 0; i < s.fact.Len(); i++ {
		tuple, err := classify(s, i)
		if err != nil {
			return fmt.Errorf("star: classifying fact %d for %q: %w", i, name, err)
		}
		if tuple == nil {
			keys[i] = NoKey
			continue
		}
		k, err := d.AddMember(tuple)
		if err != nil {
			return err
		}
		keys[i] = k
	}
	s.dims[name] = d
	s.fact.dimIdx[name] = len(s.fact.dimNames)
	s.fact.dimNames = append(s.fact.dimNames, name)
	s.fact.keys = append(s.fact.keys, keys)
	return nil
}

// RemoveDimension detaches a dimension from the schema and fact table —
// the inverse plasticity operation, used by the decision-optimisation
// feature to test aggregate stability under dimension ablation. The fact
// rows themselves are untouched.
func (s *Schema) RemoveDimension(name string) error {
	j, ok := s.fact.dimIdx[name]
	if !ok {
		return fmt.Errorf("star: unknown dimension %q", name)
	}
	if len(s.fact.dimNames) == 1 {
		return fmt.Errorf("star: cannot remove the last dimension")
	}
	delete(s.dims, name)
	s.fact.dimNames = append(s.fact.dimNames[:j], s.fact.dimNames[j+1:]...)
	s.fact.keys = append(s.fact.keys[:j], s.fact.keys[j+1:]...)
	s.fact.dimIdx = make(map[string]int, len(s.fact.dimNames))
	for i, n := range s.fact.dimNames {
		s.fact.dimIdx[n] = i
	}
	return nil
}
