package star

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ddgms/ddgms/internal/storage"
	"github.com/ddgms/ddgms/internal/value"
)

// Snowflake support: the paper's Fig 1 describes the fact table linked to
// dimensions "resembling a star or snowflake structure". An outrigger is
// a normalised sub-table hanging off a dimension: dimension members hold
// a surrogate key into the outrigger, and queries traverse it with dotted
// attribute names ("Locality.Remoteness"). The OLAP engine needs no
// changes — Dimension.Attr and Schema lookups resolve the dots.

// Outrigger is a normalised attribute group shared by many dimension
// members.
type Outrigger struct {
	name    string
	schema  *storage.Schema
	members *storage.Table
	lookup  map[string]Key
}

// NewOutrigger creates an empty outrigger with the given attributes.
func NewOutrigger(name string, attrs []storage.Field) (*Outrigger, error) {
	if name == "" || strings.Contains(name, ".") {
		return nil, fmt.Errorf("star: invalid outrigger name %q", name)
	}
	schema, err := storage.NewSchema(attrs...)
	if err != nil {
		return nil, fmt.Errorf("star: outrigger %q: %w", name, err)
	}
	tbl, err := storage.NewTable(schema)
	if err != nil {
		return nil, err
	}
	return &Outrigger{name: name, schema: schema, members: tbl, lookup: make(map[string]Key)}, nil
}

// Name returns the outrigger name.
func (o *Outrigger) Name() string { return o.name }

// Schema returns the outrigger attribute schema.
func (o *Outrigger) Schema() *storage.Schema { return o.schema }

// Len reports the number of outrigger members.
func (o *Outrigger) Len() int { return o.members.Len() }

// AddMember interns an attribute tuple.
func (o *Outrigger) AddMember(attrs []value.Value) (Key, error) {
	if len(attrs) != o.schema.Len() {
		return NoKey, fmt.Errorf("star: outrigger %q: member has %d attributes, schema has %d",
			o.name, len(attrs), o.schema.Len())
	}
	mk := memberKey(attrs)
	if k, ok := o.lookup[mk]; ok {
		return k, nil
	}
	if err := o.members.AppendRow(attrs); err != nil {
		return NoKey, err
	}
	k := Key(o.members.Len() - 1)
	o.lookup[mk] = k
	return k, nil
}

// AttachOutrigger links an outrigger to the dimension and records, per
// existing dimension member, which outrigger member it references
// (classify maps a member's attribute tuple to an outrigger tuple; nil
// means no link). After attachment, "<outrigger>.<attr>" resolves through
// Dimension.Attr and the dimension schema lookup used by the cube engine.
func (d *Dimension) AttachOutrigger(o *Outrigger, classify func(member []value.Value) ([]value.Value, error)) error {
	if d.outriggers == nil {
		d.outriggers = make(map[string]*outriggerLink)
	}
	if _, dup := d.outriggers[o.name]; dup {
		return fmt.Errorf("star: dimension %q already has outrigger %q", d.name, o.name)
	}
	keys := make([]Key, d.members.Len())
	for i := 0; i < d.members.Len(); i++ {
		tuple, err := classify(d.members.Row(i))
		if err != nil {
			return fmt.Errorf("star: classifying member %d for outrigger %q: %w", i, o.name, err)
		}
		if tuple == nil {
			keys[i] = NoKey
			continue
		}
		k, err := o.AddMember(tuple)
		if err != nil {
			return err
		}
		keys[i] = k
	}
	d.outriggers[o.name] = &outriggerLink{rig: o, keys: keys}
	return nil
}

// outriggerLink pairs an outrigger with the per-member key column.
type outriggerLink struct {
	rig  *Outrigger
	keys []Key
}

// resolveOutrigger splits a dotted attribute path and returns the link
// and inner attribute name, or ok=false for plain attributes.
func (d *Dimension) resolveOutrigger(attr string) (*outriggerLink, string, bool) {
	dot := strings.IndexByte(attr, '.')
	if dot < 0 || d.outriggers == nil {
		return nil, "", false
	}
	link, ok := d.outriggers[attr[:dot]]
	if !ok {
		return nil, "", false
	}
	return link, attr[dot+1:], true
}

// outriggerAttr reads one outrigger attribute of member k.
func (d *Dimension) outriggerAttr(k Key, attr string) (value.Value, bool, error) {
	link, inner, ok := d.resolveOutrigger(attr)
	if !ok {
		return value.NA(), false, nil
	}
	if k < 0 || int(k) >= len(link.keys) {
		return value.NA(), true, fmt.Errorf("star: dimension %q: key %d out of range", d.name, k)
	}
	ok2 := link.keys[k]
	if ok2 == NoKey {
		return value.NA(), true, nil
	}
	v, err := link.rig.members.Value(int(ok2), inner)
	if err != nil {
		return value.NA(), true, fmt.Errorf("star: outrigger %q: %w", link.rig.name, err)
	}
	return v, true, nil
}

// hasOutriggerAttr reports whether the dotted name resolves.
func (d *Dimension) hasOutriggerAttr(attr string) bool {
	link, inner, ok := d.resolveOutrigger(attr)
	if !ok {
		return false
	}
	_, exists := link.rig.schema.Lookup(inner)
	return exists
}

// Outriggers returns the attached outriggers sorted by name.
func (d *Dimension) Outriggers() []*Outrigger {
	var names []string
	for n := range d.outriggers {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Outrigger, len(names))
	for i, n := range names {
		out[i] = d.outriggers[n].rig
	}
	return out
}
