package star

import (
	"testing"

	"github.com/ddgms/ddgms/internal/storage"
	"github.com/ddgms/ddgms/internal/value"
)

// ruralityOutrigger normalises locality detail out of the Personal
// dimension: town/rural/remote map to a remoteness class and a
// travel-burden flag.
func ruralityOutrigger(t *testing.T) *Outrigger {
	t.Helper()
	o, err := NewOutrigger("Locality", []storage.Field{
		{Name: "Remoteness", Kind: value.StringKind},
		{Name: "TravelBurden", Kind: value.StringKind},
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func snowflakeDimension(t *testing.T) *Dimension {
	t.Helper()
	d, err := NewDimension("Personal", []storage.Field{
		{Name: "Gender", Kind: value.StringKind},
		{Name: "Rurality", Kind: value.StringKind},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range [][]value.Value{
		{value.Str("M"), value.Str("town")},
		{value.Str("F"), value.Str("remote")},
		{value.Str("F"), value.Str("town")},
		{value.Str("M"), value.NA()},
	} {
		if _, err := d.AddMember(m); err != nil {
			t.Fatal(err)
		}
	}
	o := ruralityOutrigger(t)
	err = d.AttachOutrigger(o, func(member []value.Value) ([]value.Value, error) {
		r := member[1]
		if r.IsNA() {
			return nil, nil
		}
		switch r.Str() {
		case "town":
			return []value.Value{value.Str("inner-regional"), value.Str("low")}, nil
		default:
			return []value.Value{value.Str("outer-regional"), value.Str("high")}, nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestOutriggerAttrResolution(t *testing.T) {
	d := snowflakeDimension(t)
	v, err := d.Attr(0, "Locality.Remoteness")
	if err != nil || v.Str() != "inner-regional" {
		t.Errorf("member 0 remoteness = %v, %v", v, err)
	}
	v, err = d.Attr(1, "Locality.TravelBurden")
	if err != nil || v.Str() != "high" {
		t.Errorf("member 1 burden = %v, %v", v, err)
	}
	// Unlinked member resolves to NA.
	v, err = d.Attr(3, "Locality.Remoteness")
	if err != nil || !v.IsNA() {
		t.Errorf("unlinked member = %v, %v", v, err)
	}
	// Plain attributes still work.
	v, err = d.Attr(0, "Gender")
	if err != nil || v.Str() != "M" {
		t.Errorf("plain attr = %v, %v", v, err)
	}
	// Outrigger members are interned: two "town" members share one row.
	if d.Outriggers()[0].Len() != 2 {
		t.Errorf("outrigger members = %d, want 2", d.Outriggers()[0].Len())
	}
}

func TestOutriggerHasAttrAndKind(t *testing.T) {
	d := snowflakeDimension(t)
	if !d.HasAttr("Locality.Remoteness") || !d.HasAttr("Gender") {
		t.Error("HasAttr misses valid attributes")
	}
	if d.HasAttr("Locality.Nope") || d.HasAttr("Nowhere.X") || d.HasAttr("Nope") {
		t.Error("HasAttr accepts invalid attributes")
	}
	if k, ok := d.AttrKind("Locality.TravelBurden"); !ok || k != value.StringKind {
		t.Errorf("AttrKind dotted = %v, %v", k, ok)
	}
	if k, ok := d.AttrKind("Gender"); !ok || k != value.StringKind {
		t.Errorf("AttrKind plain = %v, %v", k, ok)
	}
	if _, ok := d.AttrKind("Locality.Nope"); ok {
		t.Error("AttrKind accepts bad inner attribute")
	}
}

func TestOutriggerAttrValues(t *testing.T) {
	d := snowflakeDimension(t)
	vals, err := d.AttrValues("Locality.Remoteness")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0].Str() != "inner-regional" || vals[1].Str() != "outer-regional" {
		t.Errorf("values = %v", vals)
	}
}

func TestOutriggerErrors(t *testing.T) {
	if _, err := NewOutrigger("", nil); err == nil {
		t.Error("empty name must fail")
	}
	if _, err := NewOutrigger("a.b", nil); err == nil {
		t.Error("dotted name must fail")
	}
	d := snowflakeDimension(t)
	o := ruralityOutrigger(t)
	if err := d.AttachOutrigger(o, nil); err == nil {
		t.Error("duplicate outrigger name must fail")
	}
	o2, _ := NewOutrigger("Other", []storage.Field{{Name: "X", Kind: value.StringKind}})
	err := d.AttachOutrigger(o2, func(m []value.Value) ([]value.Value, error) {
		return []value.Value{value.Str("a"), value.Str("extra")}, nil
	})
	if err == nil {
		t.Error("arity mismatch in classify must fail")
	}
	// Out-of-range key through the outrigger path.
	if _, err := d.Attr(99, "Locality.Remoteness"); err == nil {
		t.Error("out-of-range key must fail")
	}
}
