package star

import (
	"fmt"
	"sort"

	"github.com/ddgms/ddgms/internal/storage"
	"github.com/ddgms/ddgms/internal/value"
)

// Schema is a complete star schema: named dimensions around one fact
// table.
type Schema struct {
	Name string
	dims map[string]*Dimension
	fact *FactTable
}

// Dimension returns the named dimension.
func (s *Schema) Dimension(name string) (*Dimension, bool) {
	d, ok := s.dims[name]
	return d, ok
}

// Dimensions returns all dimensions sorted by name.
func (s *Schema) Dimensions() []*Dimension {
	names := make([]string, 0, len(s.dims))
	for n := range s.dims {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Dimension, len(names))
	for i, n := range names {
		out[i] = s.dims[n]
	}
	return out
}

// Fact returns the fact table.
func (s *Schema) Fact() *FactTable { return s.fact }

// Describe renders the star schema as text: the fact table with its
// measures, surrounded by each dimension and its attributes — the textual
// equivalent of the paper's Fig 1 / Fig 3 diagrams.
func (s *Schema) Describe() string {
	out := fmt.Sprintf("Fact: %s (%d rows)\n", s.Name, s.fact.Len())
	out += "  measures:"
	for _, f := range s.fact.Measures().Fields() {
		out += " " + f.Name
	}
	out += "\n"
	for _, d := range s.Dimensions() {
		out += fmt.Sprintf("Dimension: %s (%d members)\n", d.Name(), d.Len())
		out += "  attributes:"
		for _, f := range d.Schema().Fields() {
			out += " " + f.Name
		}
		out += "\n"
		for _, h := range d.Hierarchies() {
			out += fmt.Sprintf("  hierarchy %s:", h.Name)
			for _, l := range h.Levels {
				out += " " + l
			}
			out += "\n"
		}
	}
	return out
}

// DimSpec maps one dimension's attributes onto columns of the flat source
// table. Attribute i of the dimension is populated from source column
// Columns[i].
type DimSpec struct {
	Name        string
	Attrs       []storage.Field
	Columns     []string
	Hierarchies []Hierarchy
}

// Builder assembles a star schema declaratively and then loads it from a
// flat table.
type Builder struct {
	name     string
	dims     []DimSpec
	measures []storage.Field
	srcCols  []string
	err      error
}

// NewBuilder starts a star schema with the given fact-table name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// Dimension declares a dimension whose attributes come from the given
// source columns (attrs[i] reads srcColumns[i]).
func (b *Builder) Dimension(name string, attrs []storage.Field, srcColumns []string, hierarchies ...Hierarchy) *Builder {
	if b.err != nil {
		return b
	}
	if len(attrs) != len(srcColumns) {
		b.err = fmt.Errorf("star: dimension %q: %d attributes but %d source columns",
			name, len(attrs), len(srcColumns))
		return b
	}
	b.dims = append(b.dims, DimSpec{Name: name, Attrs: attrs, Columns: srcColumns, Hierarchies: hierarchies})
	return b
}

// Measure declares a numeric measure read from the named source column.
func (b *Builder) Measure(field storage.Field, srcColumn string) *Builder {
	if b.err != nil {
		return b
	}
	b.measures = append(b.measures, field)
	b.srcCols = append(b.srcCols, srcColumn)
	return b
}

// Build constructs the star schema and loads every row of the flat table
// as one fact: dimension members are interned (deduplicated) and facts
// point at them via surrogate keys. A fact whose dimension attributes are
// all NA gets NoKey for that dimension.
func (b *Builder) Build(flat *storage.Table) (*Schema, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.dims) == 0 {
		return nil, fmt.Errorf("star: schema %q has no dimensions", b.name)
	}
	// Validate all source columns up front.
	for _, d := range b.dims {
		for i, c := range d.Columns {
			j, ok := flat.Schema().Lookup(c)
			if !ok {
				return nil, fmt.Errorf("star: dimension %q: source column %q not in flat table", d.Name, c)
			}
			if got := flat.Schema().Field(j).Kind; got != d.Attrs[i].Kind {
				return nil, fmt.Errorf("star: dimension %q attribute %q: source column %q has kind %v, want %v",
					d.Name, d.Attrs[i].Name, c, got, d.Attrs[i].Kind)
			}
		}
	}
	for i, c := range b.srcCols {
		j, ok := flat.Schema().Lookup(c)
		if !ok {
			return nil, fmt.Errorf("star: measure %q: source column %q not in flat table", b.measures[i].Name, c)
		}
		if got := flat.Schema().Field(j).Kind; got != b.measures[i].Kind {
			return nil, fmt.Errorf("star: measure %q: source column %q has kind %v, want %v",
				b.measures[i].Name, c, got, b.measures[i].Kind)
		}
	}

	s := &Schema{Name: b.name, dims: make(map[string]*Dimension, len(b.dims))}
	dimNames := make([]string, len(b.dims))
	for i, spec := range b.dims {
		d, err := NewDimension(spec.Name, spec.Attrs, spec.Hierarchies...)
		if err != nil {
			return nil, err
		}
		if _, dup := s.dims[spec.Name]; dup {
			return nil, fmt.Errorf("star: duplicate dimension %q", spec.Name)
		}
		s.dims[spec.Name] = d
		dimNames[i] = spec.Name
	}
	fact, err := NewFactTable(dimNames, b.measures)
	if err != nil {
		return nil, err
	}
	s.fact = fact

	attrBuf := make(map[string][]value.Value, len(b.dims))
	for _, spec := range b.dims {
		attrBuf[spec.Name] = make([]value.Value, len(spec.Columns))
	}
	measBuf := make([]value.Value, len(b.srcCols))
	for i := 0; i < flat.Len(); i++ {
		keys := make(map[string]Key, len(b.dims))
		for _, spec := range b.dims {
			buf := attrBuf[spec.Name]
			allNA := true
			for a, c := range spec.Columns {
				buf[a] = flat.MustValue(i, c)
				if !buf[a].IsNA() {
					allNA = false
				}
			}
			if allNA {
				keys[spec.Name] = NoKey
				continue
			}
			k, err := s.dims[spec.Name].AddMember(buf)
			if err != nil {
				return nil, fmt.Errorf("star: loading row %d: %w", i, err)
			}
			keys[spec.Name] = k
		}
		for m, c := range b.srcCols {
			measBuf[m] = flat.MustValue(i, c)
		}
		if err := fact.Append(keys, measBuf); err != nil {
			return nil, fmt.Errorf("star: loading row %d: %w", i, err)
		}
	}
	return s, nil
}

// Append loads every row of a delta flat table as additional facts into a
// schema previously produced by Build from the same spec. New dimension
// members are interned on the fly (AddMember deduplicates, so existing
// members keep their keys); fact-table dimensions outside the builder
// spec — feedback dimensions attached after the initial build — get NoKey
// for appended rows, matching AddFeedbackDimension's default.
func (b *Builder) Append(s *Schema, flat *storage.Table) error {
	if b.err != nil {
		return b.err
	}
	for _, d := range b.dims {
		if _, ok := s.dims[d.Name]; !ok {
			return fmt.Errorf("star: schema has no dimension %q to append into", d.Name)
		}
		for i, c := range d.Columns {
			j, ok := flat.Schema().Lookup(c)
			if !ok {
				return fmt.Errorf("star: dimension %q: source column %q not in delta table", d.Name, c)
			}
			if got := flat.Schema().Field(j).Kind; got != d.Attrs[i].Kind {
				return fmt.Errorf("star: dimension %q attribute %q: source column %q has kind %v, want %v",
					d.Name, d.Attrs[i].Name, c, got, d.Attrs[i].Kind)
			}
		}
	}
	for i, c := range b.srcCols {
		j, ok := flat.Schema().Lookup(c)
		if !ok {
			return fmt.Errorf("star: measure %q: source column %q not in delta table", b.measures[i].Name, c)
		}
		if got := flat.Schema().Field(j).Kind; got != b.measures[i].Kind {
			return fmt.Errorf("star: measure %q: source column %q has kind %v, want %v",
				b.measures[i].Name, c, got, b.measures[i].Kind)
		}
	}

	extra := make([]string, 0) // fact dims not covered by the spec
	spec := make(map[string]bool, len(b.dims))
	for _, d := range b.dims {
		spec[d.Name] = true
	}
	for _, name := range s.fact.dimNames {
		if !spec[name] {
			extra = append(extra, name)
		}
	}

	attrBuf := make(map[string][]value.Value, len(b.dims))
	for _, d := range b.dims {
		attrBuf[d.Name] = make([]value.Value, len(d.Columns))
	}
	measBuf := make([]value.Value, len(b.srcCols))
	for i := 0; i < flat.Len(); i++ {
		keys := make(map[string]Key, len(s.fact.dimNames))
		for _, d := range b.dims {
			buf := attrBuf[d.Name]
			allNA := true
			for a, c := range d.Columns {
				buf[a] = flat.MustValue(i, c)
				if !buf[a].IsNA() {
					allNA = false
				}
			}
			if allNA {
				keys[d.Name] = NoKey
				continue
			}
			k, err := s.dims[d.Name].AddMember(buf)
			if err != nil {
				return fmt.Errorf("star: appending row %d: %w", i, err)
			}
			keys[d.Name] = k
		}
		for _, name := range extra {
			keys[name] = NoKey
		}
		for m, c := range b.srcCols {
			measBuf[m] = flat.MustValue(i, c)
		}
		if err := s.fact.Append(keys, measBuf); err != nil {
			return fmt.Errorf("star: appending row %d: %w", i, err)
		}
	}
	return nil
}
