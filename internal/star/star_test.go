package star

import (
	"strings"
	"testing"

	"github.com/ddgms/ddgms/internal/storage"
	"github.com/ddgms/ddgms/internal/value"
)

// flatVisits builds a small transformed DiScRi-like flat table.
func flatVisits(t *testing.T) *storage.Table {
	t.Helper()
	tbl := storage.MustTable(storage.MustSchema(
		storage.Field{Name: "Gender", Kind: value.StringKind},
		storage.Field{Name: "AgeBand10", Kind: value.StringKind},
		storage.Field{Name: "AgeBand5", Kind: value.StringKind},
		storage.Field{Name: "Diabetes", Kind: value.StringKind},
		storage.Field{Name: "VisitNo", Kind: value.IntKind},
		storage.Field{Name: "FBG", Kind: value.FloatKind},
	))
	add := func(g, b10, b5, dia string, visit int64, fbg float64) {
		row := []value.Value{
			value.Str(g), value.Str(b10), value.Str(b5), value.Str(dia),
			value.Int(visit), value.Float(fbg),
		}
		if err := tbl.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	add("M", "70-80", "70-75", "Yes", 1, 7.2)
	add("M", "70-80", "70-75", "Yes", 2, 7.8)
	add("F", "70-80", "75-80", "Yes", 1, 7.5)
	add("F", "40-60", "40-45", "No", 1, 5.1)
	add("M", "40-60", "45-50", "No", 1, 5.4)
	return tbl
}

func buildStar(t *testing.T) *Schema {
	t.Helper()
	s, err := NewBuilder("MedicalMeasures").
		Dimension("PersonalInformation",
			[]storage.Field{{Name: "Gender", Kind: value.StringKind},
				{Name: "AgeBand10", Kind: value.StringKind},
				{Name: "AgeBand5", Kind: value.StringKind}},
			[]string{"Gender", "AgeBand10", "AgeBand5"},
			Hierarchy{Name: "Age", Levels: []string{"AgeBand10", "AgeBand5"}}).
		Dimension("MedicalCondition",
			[]storage.Field{{Name: "Diabetes", Kind: value.StringKind}},
			[]string{"Diabetes"}).
		Dimension("Cardinality",
			[]storage.Field{{Name: "VisitNo", Kind: value.IntKind}},
			[]string{"VisitNo"}).
		Measure(storage.Field{Name: "FBG", Kind: value.FloatKind}, "FBG").
		Build(flatVisits(t))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s
}

func TestBuildInternsDimensionMembers(t *testing.T) {
	s := buildStar(t)
	pi, ok := s.Dimension("PersonalInformation")
	if !ok {
		t.Fatal("missing dimension")
	}
	// 5 facts but only 4 distinct (gender, band10, band5) tuples —
	// the two male 70-75 visits share a member.
	if pi.Len() != 4 {
		t.Errorf("PersonalInformation members = %d, want 4", pi.Len())
	}
	if s.Fact().Len() != 5 {
		t.Errorf("facts = %d, want 5", s.Fact().Len())
	}
	// Facts 0 and 1 share the same surrogate key.
	k0, _ := s.Fact().Key(0, "PersonalInformation")
	k1, _ := s.Fact().Key(1, "PersonalInformation")
	if k0 != k1 {
		t.Errorf("shared member not deduped: %d vs %d", k0, k1)
	}
	// Attribute read-through.
	g, err := pi.Attr(k0, "Gender")
	if err != nil || g.Str() != "M" {
		t.Errorf("Attr = %v, %v", g, err)
	}
}

func TestAttrValues(t *testing.T) {
	s := buildStar(t)
	pi, _ := s.Dimension("PersonalInformation")
	bands, err := pi.AttrValues("AgeBand10")
	if err != nil {
		t.Fatal(err)
	}
	if len(bands) != 2 || bands[0].Str() != "40-60" || bands[1].Str() != "70-80" {
		t.Errorf("bands = %v", bands)
	}
	if _, err := pi.AttrValues("Nope"); err == nil {
		t.Error("unknown attribute must fail")
	}
}

func TestHierarchyNavigation(t *testing.T) {
	s := buildStar(t)
	pi, _ := s.Dimension("PersonalInformation")
	h, ok := pi.Hierarchy("Age")
	if !ok {
		t.Fatal("missing hierarchy")
	}
	if got := h.Finer("AgeBand10"); got != "AgeBand5" {
		t.Errorf("Finer = %q", got)
	}
	if got := h.Finer("AgeBand5"); got != "" {
		t.Errorf("Finer at finest = %q", got)
	}
	if got := h.Coarser("AgeBand5"); got != "AgeBand10" {
		t.Errorf("Coarser = %q", got)
	}
	if got := h.Coarser("AgeBand10"); got != "" {
		t.Errorf("Coarser at coarsest = %q", got)
	}
	if _, ok := pi.Hierarchy("Nope"); ok {
		t.Error("unknown hierarchy must report !ok")
	}
}

func TestBuilderValidation(t *testing.T) {
	flat := flatVisits(t)
	// Unknown source column.
	_, err := NewBuilder("X").
		Dimension("D", []storage.Field{{Name: "A", Kind: value.StringKind}}, []string{"Nope"}).
		Build(flat)
	if err == nil {
		t.Error("unknown source column must fail")
	}
	// Kind mismatch.
	_, err = NewBuilder("X").
		Dimension("D", []storage.Field{{Name: "A", Kind: value.IntKind}}, []string{"Gender"}).
		Build(flat)
	if err == nil {
		t.Error("kind mismatch must fail")
	}
	// Attr/column arity mismatch.
	_, err = NewBuilder("X").
		Dimension("D", []storage.Field{{Name: "A", Kind: value.StringKind}}, []string{"Gender", "Diabetes"}).
		Build(flat)
	if err == nil {
		t.Error("arity mismatch must fail")
	}
	// No dimensions.
	if _, err = NewBuilder("X").Build(flat); err == nil {
		t.Error("no dimensions must fail")
	}
	// Bad measure column.
	_, err = NewBuilder("X").
		Dimension("D", []storage.Field{{Name: "A", Kind: value.StringKind}}, []string{"Gender"}).
		Measure(storage.Field{Name: "M", Kind: value.FloatKind}, "Nope").
		Build(flat)
	if err == nil {
		t.Error("unknown measure column must fail")
	}
	// Non-numeric measure.
	if _, err := NewFactTable([]string{"D"}, []storage.Field{{Name: "M", Kind: value.StringKind}}); err == nil {
		t.Error("string measure must fail")
	}
	// Bad hierarchy.
	if _, err := NewDimension("D", []storage.Field{{Name: "A", Kind: value.StringKind}},
		Hierarchy{Name: "H", Levels: []string{"A"}}); err == nil {
		t.Error("single-level hierarchy must fail")
	}
	if _, err := NewDimension("D", []storage.Field{{Name: "A", Kind: value.StringKind}},
		Hierarchy{Name: "H", Levels: []string{"A", "B"}}); err == nil {
		t.Error("hierarchy over unknown attribute must fail")
	}
}

func TestAllNADimensionGetsNoKey(t *testing.T) {
	flat := storage.MustTable(storage.MustSchema(
		storage.Field{Name: "G", Kind: value.StringKind},
		storage.Field{Name: "M", Kind: value.FloatKind},
	))
	flat.AppendRow([]value.Value{value.NA(), value.Float(1)})
	flat.AppendRow([]value.Value{value.Str("F"), value.Float(2)})
	s, err := NewBuilder("F").
		Dimension("D", []storage.Field{{Name: "G", Kind: value.StringKind}}, []string{"G"}).
		Measure(storage.Field{Name: "M", Kind: value.FloatKind}, "M").
		Build(flat)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := s.Fact().Key(0, "D")
	if k != NoKey {
		t.Errorf("all-NA fact key = %d, want NoKey", k)
	}
	d, _ := s.Dimension("D")
	if d.Len() != 1 {
		t.Errorf("members = %d, want 1", d.Len())
	}
}

func TestSCDType1Update(t *testing.T) {
	s := buildStar(t)
	mc, _ := s.Dimension("MedicalCondition")
	k, _ := s.Fact().Key(0, "MedicalCondition")
	if err := mc.UpdateMember(k, []value.Value{value.Str("Remission")}); err != nil {
		t.Fatal(err)
	}
	// Every fact pointing at k now reads the new attribute.
	v, _ := mc.Attr(k, "Diabetes")
	if v.Str() != "Remission" {
		t.Errorf("after type-1 update: %v", v)
	}
	// Interning the old tuple creates a fresh member (lookup was rekeyed).
	k2, err := mc.AddMember([]value.Value{value.Str("Yes")})
	if err != nil {
		t.Fatal(err)
	}
	if k2 == k {
		t.Error("old tuple must not resolve to the updated member")
	}
	if err := mc.UpdateMember(999, []value.Value{value.Str("x")}); err == nil {
		t.Error("out-of-range update must fail")
	}
	if err := mc.UpdateMember(k, []value.Value{value.Str("a"), value.Str("b")}); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestSCDType2Version(t *testing.T) {
	s := buildStar(t)
	mc, _ := s.Dimension("MedicalCondition")
	before := mc.Len()
	k, err := mc.VersionMember([]value.Value{value.Str("Type2-Managed")})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Len() != before+1 {
		t.Errorf("members = %d, want %d", mc.Len(), before+1)
	}
	// Old members retained.
	if _, err := mc.Member(0); err != nil {
		t.Errorf("historical member lost: %v", err)
	}
	if int(k) != before {
		t.Errorf("new version key = %d, want %d", k, before)
	}
}

func TestAddFeedbackDimension(t *testing.T) {
	s := buildStar(t)
	// Clinician feedback: flag facts with FBG >= 7 as "review".
	err := s.AddFeedbackDimension("ClinicianFlag",
		[]storage.Field{{Name: "Flag", Kind: value.StringKind}},
		func(sc *Schema, i int) ([]value.Value, error) {
			fbg, err := sc.Fact().MeasureValue(i, "FBG")
			if err != nil {
				return nil, err
			}
			if f, ok := fbg.AsFloat(); ok && f >= 7 {
				return []value.Value{value.Str("review")}, nil
			}
			return []value.Value{value.Str("ok")}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	fd, ok := s.Dimension("ClinicianFlag")
	if !ok {
		t.Fatal("feedback dimension missing")
	}
	if fd.Len() != 2 {
		t.Errorf("feedback members = %d, want 2", fd.Len())
	}
	// Fact 0 (FBG 7.2) must be flagged review.
	k, err := s.Fact().Key(0, "ClinicianFlag")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := fd.Attr(k, "Flag")
	if v.Str() != "review" {
		t.Errorf("fact 0 flag = %v", v)
	}
	// Duplicate name rejected.
	if err := s.AddFeedbackDimension("ClinicianFlag", nil, nil); err == nil {
		t.Error("duplicate feedback dimension must fail")
	}
}

func TestRemoveDimension(t *testing.T) {
	s := buildStar(t)
	if err := s.RemoveDimension("Cardinality"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Dimension("Cardinality"); ok {
		t.Error("dimension still present")
	}
	if _, err := s.Fact().Key(0, "Cardinality"); err == nil {
		t.Error("fact key column still present")
	}
	// Remaining dimensions still resolve correctly.
	if _, err := s.Fact().Key(0, "MedicalCondition"); err != nil {
		t.Errorf("surviving dimension broken: %v", err)
	}
	if err := s.RemoveDimension("Nope"); err == nil {
		t.Error("unknown dimension must fail")
	}
	s.RemoveDimension("MedicalCondition")
	if err := s.RemoveDimension("PersonalInformation"); err == nil {
		t.Error("removing the last dimension must fail")
	}
}

func TestDescribe(t *testing.T) {
	s := buildStar(t)
	d := s.Describe()
	for _, want := range []string{"Fact: MedicalMeasures", "PersonalInformation", "hierarchy Age", "FBG", "Cardinality"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestFactTableErrors(t *testing.T) {
	ft, err := NewFactTable([]string{"D"}, []storage.Field{{Name: "M", Kind: value.FloatKind}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ft.Append(map[string]Key{}, []value.Value{value.Float(1)}); err == nil {
		t.Error("missing key must fail")
	}
	if err := ft.Append(map[string]Key{"X": 0}, []value.Value{value.Float(1)}); err == nil {
		t.Error("unknown dimension must fail")
	}
	if err := ft.Append(map[string]Key{"D": 0}, []value.Value{value.Str("x")}); err == nil {
		t.Error("bad measure kind must fail")
	}
	if _, err := ft.Key(0, "D"); err == nil {
		t.Error("out-of-range fact row must fail")
	}
	if _, err := NewFactTable(nil, nil); err == nil {
		t.Error("no dimensions must fail")
	}
	if _, err := NewFactTable([]string{"D", "D"}, nil); err == nil {
		t.Error("duplicate dimensions must fail")
	}
}
