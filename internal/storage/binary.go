package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"

	"github.com/ddgms/ddgms/internal/value"
)

// Binary persistence format, little-endian with varint lengths:
//
//	magic   "DDGT" (4 bytes)
//	version uvarint (currently 2; version 1 is still readable)
//	nfields uvarint
//	fields  nfields × { name: uvarint len + bytes, kind: 1 byte }
//	nrows   uvarint
//	columns nfields × column payload
//
// Each column payload is:
//
//	validity bitmap: ceil(nrows/8) bytes, LSB-first
//	values, valid rows only, by kind:
//	  int/bool/time: zig-zag varint
//	  float:         8-byte IEEE-754 bits
//	  string (v1):   uvarint len + bytes
//	  string (v2):   dictionary-compressed — snapshots carry the same
//	    dictionary + packed-code shape the execution kernels operate on:
//	      ndict   uvarint   distinct strings, first-appearance order
//	      dict    ndict × { uvarint len + bytes }
//	      width   1 byte    bits per code, ceil(log2(ndict)); 0 when ndict <= 1
//	      codes   ceil(nvalid*width/8) bytes, LSB-first continuous bitstream
const (
	binaryMagic    = "DDGT"
	binaryVersion  = 2
	binaryVersion1 = 1
)

// WriteBinary serialises the table to the compact binary format.
func (t *Table) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	writeUvarint(bw, binaryVersion)
	writeUvarint(bw, uint64(t.schema.Len()))
	for i := 0; i < t.schema.Len(); i++ {
		f := t.schema.Field(i)
		writeString(bw, f.Name)
		if err := bw.WriteByte(byte(f.Kind)); err != nil {
			return err
		}
	}
	writeUvarint(bw, uint64(t.n))
	for j, c := range t.cols {
		if err := writeColumn(bw, c, t.n); err != nil {
			return fmt.Errorf("storage: writing column %q: %w", t.schema.Field(j).Name, err)
		}
	}
	return bw.Flush()
}

func writeColumn(bw *bufio.Writer, c Column, n int) error {
	// Validity bitmap.
	bitmap := make([]byte, (n+7)/8)
	for i := 0; i < n; i++ {
		if !c.IsNA(i) {
			bitmap[i>>3] |= 1 << (uint(i) & 7)
		}
	}
	if _, err := bw.Write(bitmap); err != nil {
		return err
	}
	if c.Kind() == value.StringKind {
		return writePackedStrings(bw, c, n)
	}
	for i := 0; i < n; i++ {
		if c.IsNA(i) {
			continue
		}
		v := c.Value(i)
		switch c.Kind() {
		case value.IntKind:
			writeVarint(bw, v.Int())
		case value.BoolKind:
			if v.Bool() {
				writeVarint(bw, 1)
			} else {
				writeVarint(bw, 0)
			}
		case value.TimeKind:
			writeVarint(bw, v.Time().UnixNano())
		case value.FloatKind:
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Float()))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unsupported kind %v", c.Kind())
		}
	}
	return nil
}

// writePackedStrings emits the v2 string payload: the dictionary once, in
// first-appearance order, then the valid rows as a bit-packed code stream
// at ceil(log2(ndict)) bits per code.
func writePackedStrings(bw *bufio.Writer, c Column, n int) error {
	index := make(map[string]uint32)
	var dict []string
	codes := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		if c.IsNA(i) {
			continue
		}
		s := c.Value(i).Str()
		code, ok := index[s]
		if !ok {
			code = uint32(len(dict))
			dict = append(dict, s)
			index[s] = code
		}
		codes = append(codes, code)
	}
	writeUvarint(bw, uint64(len(dict)))
	for _, s := range dict {
		writeString(bw, s)
	}
	width := packedStringWidth(len(dict))
	if err := bw.WriteByte(byte(width)); err != nil {
		return err
	}
	var acc uint64
	var nb uint
	for _, code := range codes {
		acc |= uint64(code) << nb
		nb += width
		for nb >= 8 {
			if err := bw.WriteByte(byte(acc)); err != nil {
				return err
			}
			acc >>= 8
			nb -= 8
		}
	}
	if nb > 0 {
		return bw.WriteByte(byte(acc))
	}
	return nil
}

// packedStringWidth is the bit width of a v2 string code: enough bits to
// address the dictionary, zero when one entry (or none) makes every code 0.
func packedStringWidth(ndict int) uint {
	if ndict <= 1 {
		return 0
	}
	return uint(bits.Len(uint(ndict - 1)))
}

// ReadBinary deserialises a table previously written with WriteBinary.
func ReadBinary(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("storage: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("storage: bad magic %q", magic)
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("storage: reading version: %w", err)
	}
	if ver != binaryVersion && ver != binaryVersion1 {
		return nil, fmt.Errorf("storage: unsupported version %d", ver)
	}
	nf, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("storage: reading field count: %w", err)
	}
	fields := make([]Field, nf)
	for i := range fields {
		name, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("storage: reading field %d name: %w", i, err)
		}
		kb, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("storage: reading field %d kind: %w", i, err)
		}
		fields[i] = Field{Name: name, Kind: value.Kind(kb)}
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	nrows, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("storage: reading row count: %w", err)
	}
	t := MustTable(schema)
	cols := make([][]value.Value, nf)
	for j := range cols {
		col, err := readColumn(br, fields[j].Kind, int(nrows), ver)
		if err != nil {
			return nil, fmt.Errorf("storage: reading column %q: %w", fields[j].Name, err)
		}
		cols[j] = col
	}
	row := make([]value.Value, nf)
	for i := 0; i < int(nrows); i++ {
		for j := range row {
			row[j] = cols[j][i]
		}
		if err := t.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func readColumn(br *bufio.Reader, k value.Kind, n int, ver uint64) ([]value.Value, error) {
	bitmap := make([]byte, (n+7)/8)
	if _, err := io.ReadFull(br, bitmap); err != nil {
		return nil, fmt.Errorf("reading validity bitmap: %w", err)
	}
	if k == value.StringKind && ver >= 2 {
		return readPackedStrings(br, bitmap, n)
	}
	out := make([]value.Value, n)
	for i := 0; i < n; i++ {
		if bitmap[i>>3]&(1<<(uint(i)&7)) == 0 {
			out[i] = value.NA()
			continue
		}
		switch k {
		case value.IntKind:
			v, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			out[i] = value.Int(v)
		case value.BoolKind:
			v, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			out[i] = value.Bool(v != 0)
		case value.TimeKind:
			v, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			out[i] = value.Time(timeUnix(0, v))
		case value.FloatKind:
			var buf [8]byte
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, err
			}
			out[i] = value.Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
		case value.StringKind:
			s, err := readString(br)
			if err != nil {
				return nil, err
			}
			out[i] = value.Str(s)
		default:
			return nil, fmt.Errorf("unsupported kind %v", k)
		}
	}
	return out, nil
}

// readPackedStrings decodes the v2 string payload back to per-row values.
// The validity bitmap fixes how many codes the packed stream holds.
func readPackedStrings(br *bufio.Reader, bitmap []byte, n int) ([]value.Value, error) {
	ndict, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("reading string dictionary size: %w", err)
	}
	if ndict > uint64(n) {
		return nil, fmt.Errorf("string dictionary size %d exceeds row count %d", ndict, n)
	}
	dict := make([]value.Value, ndict)
	for c := range dict {
		s, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("reading string dictionary entry %d: %w", c, err)
		}
		dict[c] = value.Str(s)
	}
	wb, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("reading string code width: %w", err)
	}
	width := uint(wb)
	if width != packedStringWidth(int(ndict)) {
		return nil, fmt.Errorf("string code width %d does not match dictionary size %d", width, ndict)
	}
	nvalid := 0
	for i := 0; i < n; i++ {
		if bitmap[i>>3]&(1<<(uint(i)&7)) != 0 {
			nvalid++
		}
	}
	if nvalid > 0 && ndict == 0 {
		return nil, fmt.Errorf("%d valid rows but empty string dictionary", nvalid)
	}
	packed := make([]byte, (nvalid*int(width)+7)/8)
	if _, err := io.ReadFull(br, packed); err != nil {
		return nil, fmt.Errorf("reading packed string codes: %w", err)
	}
	out := make([]value.Value, n)
	var acc uint64
	var nb uint
	next := 0
	mask := uint64(1)<<width - 1
	for i := 0; i < n; i++ {
		if bitmap[i>>3]&(1<<(uint(i)&7)) == 0 {
			out[i] = value.NA()
			continue
		}
		for nb < width {
			acc |= uint64(packed[next]) << nb
			next++
			nb += 8
		}
		code := acc & mask
		acc >>= width
		nb -= width
		if code >= ndict {
			return nil, fmt.Errorf("string code %d out of range (dictionary size %d)", code, ndict)
		}
		out[i] = dict[code]
	}
	return out, nil
}

func writeUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	bw.Write(buf[:n])
}

func writeVarint(bw *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	bw.Write(buf[:n])
}

func writeString(bw *bufio.Writer, s string) {
	writeUvarint(bw, uint64(len(s)))
	bw.WriteString(s)
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	const maxString = 1 << 24
	if n > maxString {
		return "", fmt.Errorf("string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
