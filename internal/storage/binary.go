package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/ddgms/ddgms/internal/value"
)

// Binary persistence format, little-endian with varint lengths:
//
//	magic   "DDGT" (4 bytes)
//	version uvarint (currently 1)
//	nfields uvarint
//	fields  nfields × { name: uvarint len + bytes, kind: 1 byte }
//	nrows   uvarint
//	columns nfields × column payload
//
// Each column payload is:
//
//	validity bitmap: ceil(nrows/8) bytes, LSB-first
//	values, valid rows only, by kind:
//	  int/bool/time: zig-zag varint
//	  float:         8-byte IEEE-754 bits
//	  string:        uvarint len + bytes
const (
	binaryMagic   = "DDGT"
	binaryVersion = 1
)

// WriteBinary serialises the table to the compact binary format.
func (t *Table) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	writeUvarint(bw, binaryVersion)
	writeUvarint(bw, uint64(t.schema.Len()))
	for i := 0; i < t.schema.Len(); i++ {
		f := t.schema.Field(i)
		writeString(bw, f.Name)
		if err := bw.WriteByte(byte(f.Kind)); err != nil {
			return err
		}
	}
	writeUvarint(bw, uint64(t.n))
	for j, c := range t.cols {
		if err := writeColumn(bw, c, t.n); err != nil {
			return fmt.Errorf("storage: writing column %q: %w", t.schema.Field(j).Name, err)
		}
	}
	return bw.Flush()
}

func writeColumn(bw *bufio.Writer, c Column, n int) error {
	// Validity bitmap.
	bitmap := make([]byte, (n+7)/8)
	for i := 0; i < n; i++ {
		if !c.IsNA(i) {
			bitmap[i>>3] |= 1 << (uint(i) & 7)
		}
	}
	if _, err := bw.Write(bitmap); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if c.IsNA(i) {
			continue
		}
		v := c.Value(i)
		switch c.Kind() {
		case value.IntKind:
			writeVarint(bw, v.Int())
		case value.BoolKind:
			if v.Bool() {
				writeVarint(bw, 1)
			} else {
				writeVarint(bw, 0)
			}
		case value.TimeKind:
			writeVarint(bw, v.Time().UnixNano())
		case value.FloatKind:
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Float()))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		case value.StringKind:
			writeString(bw, v.Str())
		default:
			return fmt.Errorf("unsupported kind %v", c.Kind())
		}
	}
	return nil
}

// ReadBinary deserialises a table previously written with WriteBinary.
func ReadBinary(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("storage: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("storage: bad magic %q", magic)
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("storage: reading version: %w", err)
	}
	if ver != binaryVersion {
		return nil, fmt.Errorf("storage: unsupported version %d", ver)
	}
	nf, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("storage: reading field count: %w", err)
	}
	fields := make([]Field, nf)
	for i := range fields {
		name, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("storage: reading field %d name: %w", i, err)
		}
		kb, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("storage: reading field %d kind: %w", i, err)
		}
		fields[i] = Field{Name: name, Kind: value.Kind(kb)}
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	nrows, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("storage: reading row count: %w", err)
	}
	t := MustTable(schema)
	cols := make([][]value.Value, nf)
	for j := range cols {
		col, err := readColumn(br, fields[j].Kind, int(nrows))
		if err != nil {
			return nil, fmt.Errorf("storage: reading column %q: %w", fields[j].Name, err)
		}
		cols[j] = col
	}
	row := make([]value.Value, nf)
	for i := 0; i < int(nrows); i++ {
		for j := range row {
			row[j] = cols[j][i]
		}
		if err := t.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func readColumn(br *bufio.Reader, k value.Kind, n int) ([]value.Value, error) {
	bitmap := make([]byte, (n+7)/8)
	if _, err := io.ReadFull(br, bitmap); err != nil {
		return nil, fmt.Errorf("reading validity bitmap: %w", err)
	}
	out := make([]value.Value, n)
	for i := 0; i < n; i++ {
		if bitmap[i>>3]&(1<<(uint(i)&7)) == 0 {
			out[i] = value.NA()
			continue
		}
		switch k {
		case value.IntKind:
			v, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			out[i] = value.Int(v)
		case value.BoolKind:
			v, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			out[i] = value.Bool(v != 0)
		case value.TimeKind:
			v, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			out[i] = value.Time(timeUnix(0, v))
		case value.FloatKind:
			var buf [8]byte
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, err
			}
			out[i] = value.Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
		case value.StringKind:
			s, err := readString(br)
			if err != nil {
				return nil, err
			}
			out[i] = value.Str(s)
		default:
			return nil, fmt.Errorf("unsupported kind %v", k)
		}
	}
	return out, nil
}

func writeUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	bw.Write(buf[:n])
}

func writeVarint(bw *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	bw.Write(buf[:n])
}

func writeString(bw *bufio.Writer, s string) {
	writeUvarint(bw, uint64(len(s)))
	bw.WriteString(s)
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	const maxString = 1 << 24
	if n > maxString {
		return "", fmt.Errorf("string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
