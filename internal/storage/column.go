package storage

import (
	"fmt"
	"sync"

	"github.com/ddgms/ddgms/internal/exec"
	"github.com/ddgms/ddgms/internal/value"
)

// Column is an append-only typed column with a null bitmap. Implementations
// store payloads in dense typed slices so scans and aggregations touch
// contiguous memory.
type Column interface {
	// Kind reports the value kind stored by the column.
	Kind() value.Kind
	// Len reports the number of rows.
	Len() int
	// Value materialises row i as a Value. NA rows return value.NA().
	Value(i int) value.Value
	// Append adds a value. NA is always accepted; otherwise the value's
	// kind must match the column kind.
	Append(v value.Value) error
	// IsNA reports whether row i is missing.
	IsNA(i int) bool
	// Set replaces row i. NA is always accepted; otherwise kinds must
	// match.
	Set(i int, v value.Value) error
	// Dict returns the dictionary-encoded view of the column: a per-row
	// code vector (flat, bit-packed or RLE, chosen by column stats) plus
	// the code -> value reverse table, with NA pinned to code 0. The view
	// is built lazily, cached, and invalidated by Append/Set; the
	// returned snapshot is immutable, so concurrent readers may hold it
	// across later mutations.
	Dict() exec.CodedColumn
}

// dictCache memoises a column's coded view. The mutex makes concurrent
// Dict calls safe (two readers racing to build the cache), which the
// parallel execution kernel relies on; mutation is already documented as
// single-goroutine, so invalidate simply clears the pointer.
type dictCache struct {
	mu   sync.Mutex
	dict exec.CodedColumn
}

// dictHit / dictMiss are resolved once; each lookup pays one atomic.
var dictHit, dictMiss = exec.DictLookupCounters("storage")

func (d *dictCache) get(build func() exec.CodedColumn) exec.CodedColumn {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dict == nil {
		dictMiss.Inc()
		d.dict = build()
		noteDictBuilt(d.dict.Encoding().String(), d.dict.CodeBytes())
	} else {
		dictHit.Inc()
	}
	return d.dict
}

func (d *dictCache) invalidate() {
	d.mu.Lock()
	if d.dict != nil {
		noteDictDropped(d.dict.Encoding().String(), d.dict.CodeBytes())
		d.dict = nil
	}
	d.mu.Unlock()
}

// NewColumn creates an empty column of the given kind. String-kinded
// columns are dictionary-encoded.
func NewColumn(k value.Kind) (Column, error) {
	switch k {
	case value.IntKind, value.BoolKind, value.TimeKind:
		return &intColumn{kind: k}, nil
	case value.FloatKind:
		return &floatColumn{}, nil
	case value.StringKind:
		return newStringColumn(), nil
	}
	return nil, fmt.Errorf("storage: cannot create column of kind %v", k)
}

// nullBitmap tracks validity per row, one bit per row.
type nullBitmap struct {
	words []uint64
	n     int
}

func (b *nullBitmap) appendValid(valid bool) {
	i := b.n
	b.n++
	if i>>6 >= len(b.words) {
		b.words = append(b.words, 0)
	}
	if valid {
		b.words[i>>6] |= 1 << (uint(i) & 63)
	}
}

func (b *nullBitmap) valid(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

func (b *nullBitmap) setValid(i int, valid bool) {
	if valid {
		b.words[i>>6] |= 1 << (uint(i) & 63)
	} else {
		b.words[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// intColumn backs IntKind, BoolKind and TimeKind columns: all three store
// an int64 payload (bool as 0/1, time as unix nanoseconds).
type intColumn struct {
	kind  value.Kind
	data  []int64
	nulls nullBitmap
	dc    dictCache
}

func (c *intColumn) Kind() value.Kind { return c.kind }
func (c *intColumn) Len() int         { return len(c.data) }
func (c *intColumn) IsNA(i int) bool  { return !c.nulls.valid(i) }

func (c *intColumn) Value(i int) value.Value {
	if !c.nulls.valid(i) {
		return value.NA()
	}
	switch c.kind {
	case value.BoolKind:
		return value.Bool(c.data[i] != 0)
	case value.TimeKind:
		return timeFromNanos(c.data[i])
	}
	return value.Int(c.data[i])
}

func (c *intColumn) Append(v value.Value) error {
	c.dc.invalidate()
	if v.IsNA() {
		c.data = append(c.data, 0)
		c.nulls.appendValid(false)
		return nil
	}
	if v.Kind() != c.kind {
		return fmt.Errorf("storage: appending %v value to %v column", v.Kind(), c.kind)
	}
	c.data = append(c.data, rawInt(v))
	c.nulls.appendValid(true)
	return nil
}

func (c *intColumn) Dict() exec.CodedColumn {
	return c.dc.get(func() exec.CodedColumn { return exec.EncodeFunc(c.Len(), c.Value) })
}

// FloatAt reads row i as a float without materialising a value.Value.
// Only meaningful when AllFloat reports true.
func (c *intColumn) FloatAt(i int) (float64, bool) {
	if !c.nulls.valid(i) {
		return 0, false
	}
	return float64(c.data[i]), true
}

// AllFloat reports whether the payload is float-coercible: ints and
// bools are (bool stores 0/1), times are not.
func (c *intColumn) AllFloat() bool { return c.kind != value.TimeKind }

func (c *intColumn) Set(i int, v value.Value) error {
	c.dc.invalidate()
	if v.IsNA() {
		c.data[i] = 0
		c.nulls.setValid(i, false)
		return nil
	}
	if v.Kind() != c.kind {
		return fmt.Errorf("storage: setting %v value in %v column", v.Kind(), c.kind)
	}
	c.data[i] = rawInt(v)
	c.nulls.setValid(i, true)
	return nil
}

func rawInt(v value.Value) int64 {
	switch v.Kind() {
	case value.BoolKind:
		if v.Bool() {
			return 1
		}
		return 0
	case value.TimeKind:
		return v.Time().UnixNano()
	}
	return v.Int()
}

func timeFromNanos(n int64) value.Value {
	return value.Time(timeUnix(0, n))
}

// floatColumn backs FloatKind columns.
type floatColumn struct {
	data  []float64
	nulls nullBitmap
	dc    dictCache
}

func (c *floatColumn) Kind() value.Kind { return value.FloatKind }
func (c *floatColumn) Len() int         { return len(c.data) }
func (c *floatColumn) IsNA(i int) bool  { return !c.nulls.valid(i) }

func (c *floatColumn) Value(i int) value.Value {
	if !c.nulls.valid(i) {
		return value.NA()
	}
	return value.Float(c.data[i])
}

func (c *floatColumn) Dict() exec.CodedColumn {
	return c.dc.get(func() exec.CodedColumn { return exec.EncodeFunc(c.Len(), c.Value) })
}

// FloatAt reads row i as a float without materialising a value.Value.
func (c *floatColumn) FloatAt(i int) (float64, bool) {
	if !c.nulls.valid(i) {
		return 0, false
	}
	return c.data[i], true
}

// AllFloat reports that every non-NA row is a float.
func (c *floatColumn) AllFloat() bool { return true }

func (c *floatColumn) Append(v value.Value) error {
	c.dc.invalidate()
	if v.IsNA() {
		c.data = append(c.data, 0)
		c.nulls.appendValid(false)
		return nil
	}
	if v.Kind() != value.FloatKind {
		return fmt.Errorf("storage: appending %v value to float column", v.Kind())
	}
	c.data = append(c.data, v.Float())
	c.nulls.appendValid(true)
	return nil
}

func (c *floatColumn) Set(i int, v value.Value) error {
	c.dc.invalidate()
	if v.IsNA() {
		c.data[i] = 0
		c.nulls.setValid(i, false)
		return nil
	}
	if v.Kind() != value.FloatKind {
		return fmt.Errorf("storage: setting %v value in float column", v.Kind())
	}
	c.data[i] = v.Float()
	c.nulls.setValid(i, true)
	return nil
}

// stringColumn backs StringKind columns with dictionary encoding: the
// payload slice holds dictionary codes, which keeps the column compact when
// the domain is small (the typical case for discretised clinical
// attributes).
type stringColumn struct {
	codes []uint32
	dict  []string
	byStr map[string]uint32
	nulls nullBitmap
	dc    dictCache
}

func newStringColumn() *stringColumn {
	return &stringColumn{byStr: make(map[string]uint32)}
}

func (c *stringColumn) Kind() value.Kind { return value.StringKind }
func (c *stringColumn) Len() int         { return len(c.codes) }
func (c *stringColumn) IsNA(i int) bool  { return !c.nulls.valid(i) }

func (c *stringColumn) Value(i int) value.Value {
	if !c.nulls.valid(i) {
		return value.NA()
	}
	return value.Str(c.dict[c.codes[i]])
}

func (c *stringColumn) code(s string) uint32 {
	if code, ok := c.byStr[s]; ok {
		return code
	}
	code := uint32(len(c.dict))
	c.dict = append(c.dict, s)
	c.byStr[s] = code
	return code
}

// Dict shifts the column's existing string dictionary by one to make
// room for the pinned NA code — no per-row hashing, unlike the generic
// encode path.
func (c *stringColumn) Dict() exec.CodedColumn {
	return c.dc.get(func() exec.CodedColumn {
		codes := make([]uint32, len(c.codes))
		values := make([]value.Value, len(c.dict)+1)
		values[exec.NACode] = value.NA()
		for code, s := range c.dict {
			values[code+1] = value.Str(s)
		}
		for i, code := range c.codes {
			if c.nulls.valid(i) {
				codes[i] = code + 1
			}
		}
		return exec.NewCodedColumn(codes, values)
	})
}

func (c *stringColumn) Append(v value.Value) error {
	c.dc.invalidate()
	if v.IsNA() {
		c.codes = append(c.codes, 0)
		c.nulls.appendValid(false)
		return nil
	}
	if v.Kind() != value.StringKind {
		return fmt.Errorf("storage: appending %v value to string column", v.Kind())
	}
	c.codes = append(c.codes, c.code(v.Str()))
	c.nulls.appendValid(true)
	return nil
}

func (c *stringColumn) Set(i int, v value.Value) error {
	c.dc.invalidate()
	if v.IsNA() {
		c.codes[i] = 0
		c.nulls.setValid(i, false)
		return nil
	}
	if v.Kind() != value.StringKind {
		return fmt.Errorf("storage: setting %v value in string column", v.Kind())
	}
	c.codes[i] = c.code(v.Str())
	c.nulls.setValid(i, true)
	return nil
}

// DictSize reports the number of distinct strings seen by a string column.
// It returns 0 for non-string columns.
func DictSize(c Column) int {
	if sc, ok := c.(*stringColumn); ok {
		return len(sc.dict)
	}
	return 0
}
