package storage

import (
	"encoding/csv"
	"fmt"
	"io"

	"github.com/ddgms/ddgms/internal/value"
)

// WriteCSV writes the table as CSV with a header row. Values use their
// String rendering; NA renders as the empty string so round-tripping
// through ReadCSV preserves missingness.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.schema.Names()); err != nil {
		return fmt.Errorf("storage: writing CSV header: %w", err)
	}
	rec := make([]string, t.schema.Len())
	for i := 0; i < t.n; i++ {
		for j, c := range t.cols {
			v := c.Value(i)
			if v.IsNA() {
				rec[j] = ""
			} else {
				rec[j] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("storage: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a CSV stream with a header row into a table with the given
// schema. Header names must match the schema names exactly and in order.
// Each field parses with value.ParseAs against the schema kind.
func ReadCSV(r io.Reader, schema *Schema) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("storage: reading CSV header: %w", err)
	}
	names := schema.Names()
	if len(header) != len(names) {
		return nil, fmt.Errorf("storage: CSV has %d columns, schema has %d", len(header), len(names))
	}
	for i := range header {
		if header[i] != names[i] {
			return nil, fmt.Errorf("storage: CSV column %d is %q, schema expects %q", i, header[i], names[i])
		}
	}
	t := MustTable(schema)
	row := make([]value.Value, schema.Len())
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("storage: reading CSV line %d: %w", line, err)
		}
		for j, field := range rec {
			v, err := value.ParseAs(field, schema.Field(j).Kind)
			if err != nil {
				return nil, fmt.Errorf("storage: CSV line %d column %q: %w", line, names[j], err)
			}
			row[j] = v
		}
		if err := t.AppendRow(row); err != nil {
			return nil, fmt.Errorf("storage: CSV line %d: %w", line, err)
		}
	}
	return t, nil
}

// InferCSV reads a CSV stream with a header row, inferring each column's
// kind from its contents with value.Parse. A column whose non-NA values mix
// kinds falls back to string.
func InferCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("storage: reading CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("storage: CSV has no header row")
	}
	header := records[0]
	rows := records[1:]

	kinds := make([]value.Kind, len(header))
	for j := range header {
		kinds[j] = value.NAKind
		for _, rec := range rows {
			if j >= len(rec) {
				continue
			}
			v := value.Parse(rec[j])
			if v.IsNA() {
				continue
			}
			switch {
			case kinds[j] == value.NAKind:
				kinds[j] = v.Kind()
			case kinds[j] == v.Kind():
			case kinds[j] == value.IntKind && v.Kind() == value.FloatKind,
				kinds[j] == value.FloatKind && v.Kind() == value.IntKind:
				kinds[j] = value.FloatKind
			default:
				kinds[j] = value.StringKind
			}
		}
		if kinds[j] == value.NAKind {
			kinds[j] = value.StringKind // all-missing column
		}
	}
	fields := make([]Field, len(header))
	for j, name := range header {
		fields[j] = Field{Name: name, Kind: kinds[j]}
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	t := MustTable(schema)
	row := make([]value.Value, len(fields))
	for line, rec := range rows {
		for j := range fields {
			if j >= len(rec) {
				row[j] = value.NA()
				continue
			}
			v, err := value.ParseAs(rec[j], kinds[j])
			if err != nil {
				return nil, fmt.Errorf("storage: CSV line %d column %q: %w", line+2, header[j], err)
			}
			row[j] = v
		}
		if err := t.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}
