package storage

import (
	"testing"

	"github.com/ddgms/ddgms/internal/exec"
	"github.com/ddgms/ddgms/internal/value"
)

func TestDictRoundTripAllKinds(t *testing.T) {
	tbl := MustTable(MustSchema(
		Field{Name: "S", Kind: value.StringKind},
		Field{Name: "I", Kind: value.IntKind},
		Field{Name: "F", Kind: value.FloatKind},
		Field{Name: "B", Kind: value.BoolKind},
	))
	rows := [][]value.Value{
		{value.Str("x"), value.Int(1), value.Float(0.5), value.Bool(true)},
		{value.NA(), value.NA(), value.NA(), value.NA()},
		{value.Str("y"), value.Int(2), value.Float(1.5), value.Bool(false)},
		{value.Str("x"), value.Int(1), value.Float(0.5), value.Bool(true)},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	for j, name := range []string{"S", "I", "F", "B"} {
		dict, err := tbl.Dict(name)
		if err != nil {
			t.Fatal(err)
		}
		if dict.Len() != tbl.Len() {
			t.Fatalf("%s: dict len %d, want %d", name, dict.Len(), tbl.Len())
		}
		if !dict.Values()[exec.NACode].IsNA() {
			t.Fatalf("%s: code 0 decodes to %v, want NA", name, dict.Values()[0])
		}
		for i := range rows {
			if !dict.Value(i).Equal(rows[i][j]) {
				t.Errorf("%s row %d: decoded %v, want %v", name, i, dict.Value(i), rows[i][j])
			}
		}
		// Rows 0 and 3 hold equal values, so they must share a code.
		if dict.Code(0) != dict.Code(3) {
			t.Errorf("%s: equal values got codes %d and %d", name, dict.Code(0), dict.Code(3))
		}
		if dict.Code(1) != exec.NACode {
			t.Errorf("%s: NA row coded %d, want %d", name, dict.Code(1), exec.NACode)
		}
	}
}

func TestDictCachedAndInvalidated(t *testing.T) {
	tbl := MustTable(MustSchema(Field{Name: "S", Kind: value.StringKind}))
	for _, s := range []string{"a", "b", "a"} {
		if err := tbl.AppendRow([]value.Value{value.Str(s)}); err != nil {
			t.Fatal(err)
		}
	}
	col := tbl.MustColumn("S")
	d1 := col.Dict()
	if d2 := col.Dict(); d2 != d1 {
		t.Fatal("second Dict call did not return the cached snapshot")
	}

	// Append invalidates; the old snapshot stays usable and unchanged.
	if err := col.Append(value.Str("c")); err != nil {
		t.Fatal(err)
	}
	if d1.Len() != 3 {
		t.Fatalf("old snapshot mutated: len %d", d1.Len())
	}
	d3 := col.Dict()
	if d3 == d1 {
		t.Fatal("Append did not invalidate the dictionary cache")
	}
	if d3.Len() != 4 || !d3.Value(3).Equal(value.Str("c")) {
		t.Fatalf("rebuilt dict wrong: len %d last %v", d3.Len(), d3.Value(3))
	}

	// Set invalidates too.
	if err := col.Set(0, value.NA()); err != nil {
		t.Fatal(err)
	}
	d4 := col.Dict()
	if d4 == d3 {
		t.Fatal("Set did not invalidate the dictionary cache")
	}
	if d4.Code(0) != exec.NACode {
		t.Fatalf("row 0 coded %d after Set(NA), want %d", d4.Code(0), exec.NACode)
	}
}
