package storage

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/ddgms/ddgms/internal/value"
)

func TestCSVRoundTrip(t *testing.T) {
	tbl := visitsTable(t)
	tbl.Set(2, "Age", value.NA())
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf, tbl.Schema())
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.Len() != tbl.Len() {
		t.Fatalf("round trip rows = %d, want %d", back.Len(), tbl.Len())
	}
	for i := 0; i < tbl.Len(); i++ {
		a, b := tbl.Row(i), back.Row(i)
		for j := range a {
			if !a[j].Equal(b[j]) {
				t.Errorf("row %d col %d: %v != %v", i, j, a[j], b[j])
			}
		}
	}
}

func TestReadCSVValidation(t *testing.T) {
	schema := MustSchema(Field{"A", value.IntKind}, Field{"B", value.FloatKind})
	cases := []struct {
		name string
		csv  string
	}{
		{"wrong column count", "A\n1\n"},
		{"wrong header name", "A,C\n1,2\n"},
		{"bad value", "A,B\nx,2\n"},
		{"empty input", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(c.csv), schema); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestInferCSV(t *testing.T) {
	csv := "ID,FBG,Gender,Diabetes,Visit\n" +
		"1,5.4,F,yes,2012-03-01\n" +
		"2,,M,no,2012-03-02\n" +
		"3,7,F,yes,\n"
	tbl, err := InferCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatalf("InferCSV: %v", err)
	}
	wantKinds := map[string]value.Kind{
		"ID": value.IntKind, "FBG": value.FloatKind, "Gender": value.StringKind,
		"Diabetes": value.BoolKind, "Visit": value.TimeKind,
	}
	for name, k := range wantKinds {
		j, ok := tbl.Schema().Lookup(name)
		if !ok {
			t.Fatalf("missing column %q", name)
		}
		if got := tbl.Schema().Field(j).Kind; got != k {
			t.Errorf("column %q kind = %v, want %v", name, got, k)
		}
	}
	// Int+Float mixing widens to float: FBG row 3 "7" parsed as float 7.
	if v := tbl.MustValue(2, "FBG"); v.Float() != 7 {
		t.Errorf("FBG row 3 = %v", v)
	}
	if !tbl.MustValue(1, "FBG").IsNA() || !tbl.MustValue(2, "Visit").IsNA() {
		t.Error("missing cells must be NA")
	}
}

func TestInferCSVMixedFallsBackToString(t *testing.T) {
	csv := "X\n1\nhello\n"
	tbl, err := InferCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if k := tbl.Schema().Field(0).Kind; k != value.StringKind {
		t.Errorf("mixed column kind = %v, want string", k)
	}
}

func TestInferCSVEmpty(t *testing.T) {
	if _, err := InferCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV must fail")
	}
	// Header-only: zero rows, all-string schema.
	tbl, err := InferCSV(strings.NewReader("A,B\n"))
	if err != nil {
		t.Fatalf("header-only: %v", err)
	}
	if tbl.Len() != 0 || tbl.Schema().Len() != 2 {
		t.Errorf("header-only shape: %dx%d", tbl.Len(), tbl.Schema().Len())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tbl := visitsTable(t)
	tbl.Set(1, "Gender", value.NA())
	tbl.Set(3, "VisitDate", value.NA())
	var buf bytes.Buffer
	if err := tbl.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !back.Schema().Equal(tbl.Schema()) {
		t.Fatal("schema mismatch after round trip")
	}
	for i := 0; i < tbl.Len(); i++ {
		a, b := tbl.Row(i), back.Row(i)
		for j := range a {
			if !a[j].Equal(b[j]) {
				t.Errorf("row %d col %d: %v != %v", i, j, a[j], b[j])
			}
		}
	}
}

// ReadBinary must keep accepting version-1 snapshots, which carry string
// columns as raw per-row strings instead of the v2 dictionary + packed
// codes. The payload here is hand-assembled v1 bytes: one string column,
// three rows, middle row NA.
func TestReadBinaryVersion1Strings(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("DDGT")
	buf.WriteByte(1)                      // version
	buf.WriteByte(1)                      // nfields
	buf.WriteByte(4)                      // len("Name")
	buf.WriteString("Name")               //
	buf.WriteByte(byte(value.StringKind)) //
	buf.WriteByte(3)                      // nrows
	buf.WriteByte(0b101)                  // validity: rows 0 and 2
	buf.WriteByte(2)                      // len("hi")
	buf.WriteString("hi")
	buf.WriteByte(2) // len("ho")
	buf.WriteString("ho")
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary v1: %v", err)
	}
	want := []value.Value{value.Str("hi"), value.NA(), value.Str("ho")}
	if back.Len() != len(want) {
		t.Fatalf("rows: got %d want %d", back.Len(), len(want))
	}
	for i, w := range want {
		if got := back.Row(i)[0]; !got.Equal(w) {
			t.Errorf("row %d: got %v want %v", i, got, w)
		}
	}
}

// A v2 snapshot of a repetitive string column must be smaller than the v1
// raw-per-row form it replaces — the point of dictionary-compressing
// snapshots.
func TestBinaryV2CompressesStrings(t *testing.T) {
	sch, err := NewSchema(Field{Name: "Status", Kind: value.StringKind})
	if err != nil {
		t.Fatal(err)
	}
	tbl := MustTable(sch)
	for i := 0; i < 512; i++ {
		if err := tbl.AppendRow([]value.Value{value.Str("Type2Diabetes")}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tbl.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	// v1 spent 14 bytes per row on the string alone; v2 stores it once
	// plus a zero-width code stream. Header + bitmap dominate.
	if rawCost := 512 * 14; buf.Len() >= rawCost/3 {
		t.Errorf("v2 snapshot is %d bytes; want < %d (3x under raw v1 string payload)", buf.Len(), rawCost/3)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 512 || !back.Row(511)[0].Equal(value.Str("Type2Diabetes")) {
		t.Error("v2 round trip lost data")
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Error("bad magic must fail")
	}
	if _, err := ReadBinary(bytes.NewReader([]byte("DD"))); err == nil {
		t.Error("truncated magic must fail")
	}
	// Valid magic, bogus version.
	if _, err := ReadBinary(bytes.NewReader([]byte("DDGT\xFF\x01"))); err == nil {
		t.Error("bad version must fail")
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	tbl := visitsTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, n := range []int{5, 10, len(data) / 2, len(data) - 1} {
		if _, err := ReadBinary(bytes.NewReader(data[:n])); err == nil {
			t.Errorf("truncation at %d bytes must fail", n)
		}
	}
}

// Property: binary round-trip preserves arbitrary int/float/string rows with
// arbitrary missingness.
func TestQuickBinaryRoundTrip(t *testing.T) {
	schema := MustSchema(
		Field{"I", value.IntKind},
		Field{"F", value.FloatKind},
		Field{"S", value.StringKind},
		Field{"B", value.BoolKind},
	)
	f := func(is []int64, fs []float64, ss []string, nas []bool) bool {
		tbl := MustTable(schema)
		n := len(is)
		for _, other := range []int{len(fs), len(ss), len(nas)} {
			if other < n {
				n = other
			}
		}
		for i := 0; i < n; i++ {
			row := []value.Value{
				value.Int(is[i]), value.Float(fs[i]), value.Str(ss[i]), value.Bool(is[i]%2 == 0),
			}
			if nas[i] {
				row[i%4] = value.NA()
			}
			if err := tbl.AppendRow(row); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := tbl.WriteBinary(&buf); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil || back.Len() != tbl.Len() {
			return false
		}
		for i := 0; i < tbl.Len(); i++ {
			a, b := tbl.Row(i), back.Row(i)
			for j := range a {
				if !a[j].Equal(b[j]) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBinaryTimePrecision(t *testing.T) {
	schema := MustSchema(Field{"T", value.TimeKind})
	tbl := MustTable(schema)
	ts := time.Date(2013, 6, 15, 9, 45, 30, 123456789, time.UTC)
	tbl.AppendRow([]value.Value{value.Time(ts)})
	var buf bytes.Buffer
	if err := tbl.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.MustValue(0, "T").Time(); !got.Equal(ts) {
		t.Errorf("time = %v, want %v", got, ts)
	}
}
