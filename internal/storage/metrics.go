package storage

import "github.com/ddgms/ddgms/internal/obs"

// Column-encoding gauge families: how many coded columns are resident in
// dictionary caches per physical encoding, and how many bytes their code
// vectors occupy. Together they make the compression win of bit-packing
// and RLE visible on /metrics: a healthy clinical workload shows most
// columns (and far fewer bytes) under "packed" and "rle".
var (
	metricColumnEncoding = obs.Default().GaugeVec(
		"ddgms_storage_column_encoding",
		"Resident dictionary-coded columns by physical encoding.",
		"encoding")
	metricColumnBytes = obs.Default().GaugeVec(
		"ddgms_storage_column_bytes",
		"Resident code-vector bytes of dictionary-coded columns by physical encoding.",
		"encoding")
)

// noteDictBuilt / noteDictDropped keep the gauges in sync with dictionary
// cache churn: built on first Dict() after a mutation, dropped when the
// next mutation invalidates the cached column.
func noteDictBuilt(enc string, bytes int) {
	metricColumnEncoding.WithLabelValues(enc).Add(1)
	metricColumnBytes.WithLabelValues(enc).Add(float64(bytes))
}

func noteDictDropped(enc string, bytes int) {
	metricColumnEncoding.WithLabelValues(enc).Add(-1)
	metricColumnBytes.WithLabelValues(enc).Add(float64(-bytes))
}
