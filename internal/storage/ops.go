package storage

import (
	"fmt"
	"math"
	"sort"

	"github.com/ddgms/ddgms/internal/exec"
	"github.com/ddgms/ddgms/internal/value"
)

// RowPredicate decides whether row i of a table participates in an
// operation.
type RowPredicate func(t *Table, i int) bool

// Filter returns a new table containing the rows for which pred is true,
// in the original order.
func (t *Table) Filter(pred RowPredicate) *Table {
	out := MustTable(t.schema)
	for i := 0; i < t.n; i++ {
		if pred(t, i) {
			if err := out.AppendRow(t.Row(i)); err != nil {
				panic(err)
			}
		}
	}
	return out
}

// Where is a convenience filter keeping rows whose named column equals v.
func (t *Table) Where(name string, v value.Value) (*Table, error) {
	j, ok := t.schema.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("storage: unknown column %q", name)
	}
	return t.Filter(func(tb *Table, i int) bool {
		return tb.cols[j].Value(i).Equal(v)
	}), nil
}

// Project returns a new table containing only the named columns, in the
// given order.
func (t *Table) Project(names ...string) (*Table, error) {
	schema, err := t.schema.Select(names...)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(names))
	for k, n := range names {
		idx[k], _ = t.schema.Lookup(n)
	}
	out := MustTable(schema)
	row := make([]value.Value, len(names))
	for i := 0; i < t.n; i++ {
		for k, j := range idx {
			row[k] = t.cols[j].Value(i)
		}
		if err := out.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SortKey names a column and direction for Sort.
type SortKey struct {
	Column     string
	Descending bool
}

// Sort returns a new table with rows stably ordered by the given keys.
func (t *Table) Sort(keys ...SortKey) (*Table, error) {
	idx := make([]int, len(keys))
	for k, key := range keys {
		j, ok := t.schema.Lookup(key.Column)
		if !ok {
			return nil, fmt.Errorf("storage: unknown sort column %q", key.Column)
		}
		idx[k] = j
	}
	order := make([]int, t.n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := order[a], order[b]
		for k, j := range idx {
			cmp := t.cols[j].Value(ra).Compare(t.cols[j].Value(rb))
			if keys[k].Descending {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	out := MustTable(t.schema)
	for _, i := range order {
		if err := out.AppendRow(t.Row(i)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AggKind selects the aggregate computed over a group. It is the
// execution core's AggKind re-exported under its historical name, so
// every layer shares one set of aggregate semantics.
type AggKind = exec.AggKind

// Supported aggregates. CountAgg counts non-NA values of the measure column
// (or rows if the measure is empty); DistinctAgg counts distinct non-NA
// values.
const (
	CountAgg    = exec.CountAgg
	SumAgg      = exec.SumAgg
	AvgAgg      = exec.AvgAgg
	MinAgg      = exec.MinAgg
	MaxAgg      = exec.MaxAgg
	DistinctAgg = exec.DistinctAgg
)

// ParseAggKind converts an aggregate name ("count", "sum", ...) to its
// AggKind.
func ParseAggKind(s string) (AggKind, error) {
	k, err := exec.ParseAggKind(s)
	if err != nil {
		return k, fmt.Errorf("storage: unknown aggregate %q", s)
	}
	return k, nil
}

// AggSpec is one aggregate to compute per group: the aggregate kind, the
// measure column it reads (may be empty for CountAgg, meaning row count)
// and the output column name.
type AggSpec struct {
	Kind   AggKind
	Column string
	As     string
}

// GroupBy groups rows by the named key columns and computes the requested
// aggregates per group. The result has the key columns followed by one
// column per AggSpec, with groups ordered by key values ascending.
//
// Grouping runs on the shared execution kernel: key columns are
// dictionary-encoded (cached on the column), groups are keyed on packed
// integer codes and aggregated in parallel. Pass
// exec.WithVectorized(false) for the legacy single-goroutine scalar path.
func (t *Table) GroupBy(keys []string, aggs []AggSpec, opts ...exec.Option) (*Table, error) {
	return t.GroupByFiltered(keys, aggs, nil, opts...)
}

// GroupByFiltered is GroupBy restricted to the rows for which pred is
// true. Filtering happens inside the kernel scan, so no intermediate
// filtered table is materialised (the DG-SQL aggregate path relies on
// this).
func (t *Table) GroupByFiltered(keys []string, aggs []AggSpec, pred RowPredicate, opts ...exec.Option) (*Table, error) {
	keyIdx := make([]int, len(keys))
	for k, name := range keys {
		j, ok := t.schema.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("storage: unknown group column %q", name)
		}
		keyIdx[k] = j
	}
	in := exec.GroupInput{
		NumRows: t.n,
		Keys:    make([]exec.CodedColumn, len(keys)),
		Aggs:    make([]exec.AggInput, len(aggs)),
	}
	for k, j := range keyIdx {
		in.Keys[k] = t.cols[j].Dict()
	}
	for k, a := range aggs {
		in.Aggs[k].Kind = a.Kind
		if a.Column == "" {
			if a.Kind != CountAgg {
				return nil, fmt.Errorf("storage: aggregate %s requires a column", a.Kind)
			}
			continue // nil measure: count rows
		}
		j, ok := t.schema.Lookup(a.Column)
		if !ok {
			return nil, fmt.Errorf("storage: unknown aggregate column %q", a.Column)
		}
		if a.Kind == DistinctAgg {
			// Distinct aggregates read the coded view, so the dense
			// kernel can count distinct dictionary codes in bitsets
			// instead of materialising per-group Seen maps.
			in.Aggs[k].Measure = t.cols[j].Dict()
			continue
		}
		in.Aggs[k].Measure = t.cols[j]
	}
	if pred != nil {
		in.Filter = func(i int) bool { return pred(t, i) }
	}

	groups, err := exec.GroupBy(in, opts...)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}

	fields := make([]Field, 0, len(keys)+len(aggs))
	for k, name := range keys {
		fields = append(fields, Field{Name: name, Kind: t.schema.Field(keyIdx[k]).Kind})
	}
	for _, a := range aggs {
		name := a.As
		if name == "" {
			name = a.Kind.String()
			if a.Column != "" {
				name += "_" + a.Column
			}
		}
		fields = append(fields, Field{Name: name, Kind: exec.ResultKind(a.Kind)})
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	out := MustTable(schema)
	row := make([]value.Value, len(fields))
	for _, g := range groups {
		copy(row, g.Tuple)
		for k, st := range g.States {
			row[len(keys)+k] = st.Result()
		}
		if err := out.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Distinct returns the distinct rows of the named columns, sorted
// ascending. It is a zero-aggregate group-by on the shared kernel.
func (t *Table) Distinct(names ...string) (*Table, error) {
	for _, n := range names {
		if _, ok := t.schema.Lookup(n); !ok {
			return nil, fmt.Errorf("storage: unknown field %q", n)
		}
	}
	return t.GroupBy(names, nil)
}

// FloatStats summarises the non-NA numeric content of a column.
type FloatStats struct {
	Count    int
	NACount  int
	Mean     float64
	Std      float64
	Min, Max float64
}

// Stats computes summary statistics for the named numeric column.
func (t *Table) Stats(name string) (FloatStats, error) {
	col, err := t.Column(name)
	if err != nil {
		return FloatStats{}, err
	}
	var s FloatStats
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	var sum, sumSq float64
	for i := 0; i < col.Len(); i++ {
		v := col.Value(i)
		if v.IsNA() {
			s.NACount++
			continue
		}
		f, ok := v.AsFloat()
		if !ok {
			continue
		}
		s.Count++
		sum += f
		sumSq += f * f
		if f < s.Min {
			s.Min = f
		}
		if f > s.Max {
			s.Max = f
		}
	}
	if s.Count > 0 {
		s.Mean = sum / float64(s.Count)
		variance := sumSq/float64(s.Count) - s.Mean*s.Mean
		if variance < 0 {
			variance = 0
		}
		s.Std = math.Sqrt(variance)
	} else {
		s.Min, s.Max = 0, 0
	}
	return s, nil
}

// Mode returns the most frequent non-NA value of the named column, with
// ties broken by value order. The boolean result is false when the column
// holds no non-NA values.
func (t *Table) Mode(name string) (value.Value, bool, error) {
	col, err := t.Column(name)
	if err != nil {
		return value.NA(), false, err
	}
	counts := make(map[value.Value]int)
	for i := 0; i < col.Len(); i++ {
		v := col.Value(i)
		if v.IsNA() {
			continue
		}
		counts[v]++
	}
	if len(counts) == 0 {
		return value.NA(), false, nil
	}
	var best value.Value
	bestN := -1
	for v, n := range counts {
		if n > bestN || (n == bestN && v.Less(best)) {
			best, bestN = v, n
		}
	}
	return best, true, nil
}
