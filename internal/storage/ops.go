package storage

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/ddgms/ddgms/internal/value"
)

// RowPredicate decides whether row i of a table participates in an
// operation.
type RowPredicate func(t *Table, i int) bool

// Filter returns a new table containing the rows for which pred is true,
// in the original order.
func (t *Table) Filter(pred RowPredicate) *Table {
	out := MustTable(t.schema)
	for i := 0; i < t.n; i++ {
		if pred(t, i) {
			if err := out.AppendRow(t.Row(i)); err != nil {
				panic(err)
			}
		}
	}
	return out
}

// Where is a convenience filter keeping rows whose named column equals v.
func (t *Table) Where(name string, v value.Value) (*Table, error) {
	j, ok := t.schema.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("storage: unknown column %q", name)
	}
	return t.Filter(func(tb *Table, i int) bool {
		return tb.cols[j].Value(i).Equal(v)
	}), nil
}

// Project returns a new table containing only the named columns, in the
// given order.
func (t *Table) Project(names ...string) (*Table, error) {
	schema, err := t.schema.Select(names...)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(names))
	for k, n := range names {
		idx[k], _ = t.schema.Lookup(n)
	}
	out := MustTable(schema)
	row := make([]value.Value, len(names))
	for i := 0; i < t.n; i++ {
		for k, j := range idx {
			row[k] = t.cols[j].Value(i)
		}
		if err := out.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SortKey names a column and direction for Sort.
type SortKey struct {
	Column     string
	Descending bool
}

// Sort returns a new table with rows stably ordered by the given keys.
func (t *Table) Sort(keys ...SortKey) (*Table, error) {
	idx := make([]int, len(keys))
	for k, key := range keys {
		j, ok := t.schema.Lookup(key.Column)
		if !ok {
			return nil, fmt.Errorf("storage: unknown sort column %q", key.Column)
		}
		idx[k] = j
	}
	order := make([]int, t.n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := order[a], order[b]
		for k, j := range idx {
			cmp := t.cols[j].Value(ra).Compare(t.cols[j].Value(rb))
			if keys[k].Descending {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	out := MustTable(t.schema)
	for _, i := range order {
		if err := out.AppendRow(t.Row(i)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// groupKey is a canonical string encoding of a tuple of values, used as a
// map key during group-by. Value itself is comparable, but tuples of
// variable width need an encoding.
func groupKey(vals []value.Value) string {
	var sb strings.Builder
	for _, v := range vals {
		sb.WriteString(fmt.Sprintf("%d:%s\x00", v.Kind(), v.String()))
	}
	return sb.String()
}

// AggKind selects the aggregate computed over a group.
type AggKind uint8

// Supported aggregates. CountAgg counts non-NA values of the measure column
// (or rows if the measure is empty); DistinctAgg counts distinct non-NA
// values.
const (
	CountAgg AggKind = iota
	SumAgg
	AvgAgg
	MinAgg
	MaxAgg
	DistinctAgg
)

// String returns the conventional lower-case aggregate name.
func (a AggKind) String() string {
	switch a {
	case CountAgg:
		return "count"
	case SumAgg:
		return "sum"
	case AvgAgg:
		return "avg"
	case MinAgg:
		return "min"
	case MaxAgg:
		return "max"
	case DistinctAgg:
		return "distinct"
	}
	return fmt.Sprintf("AggKind(%d)", uint8(a))
}

// ParseAggKind converts an aggregate name ("count", "sum", ...) to its
// AggKind.
func ParseAggKind(s string) (AggKind, error) {
	switch strings.ToLower(s) {
	case "count":
		return CountAgg, nil
	case "sum":
		return SumAgg, nil
	case "avg", "mean":
		return AvgAgg, nil
	case "min":
		return MinAgg, nil
	case "max":
		return MaxAgg, nil
	case "distinct":
		return DistinctAgg, nil
	}
	return CountAgg, fmt.Errorf("storage: unknown aggregate %q", s)
}

// AggSpec is one aggregate to compute per group: the aggregate kind, the
// measure column it reads (may be empty for CountAgg, meaning row count)
// and the output column name.
type AggSpec struct {
	Kind   AggKind
	Column string
	As     string
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	kind     AggKind
	count    int64
	sum      float64
	min, max float64
	seen     map[value.Value]struct{}
	any      bool
}

func newAggState(kind AggKind) *aggState {
	st := &aggState{kind: kind, min: math.Inf(1), max: math.Inf(-1)}
	if kind == DistinctAgg {
		st.seen = make(map[value.Value]struct{})
	}
	return st
}

func (st *aggState) observe(v value.Value) {
	if v.IsNA() {
		return
	}
	st.count++
	st.any = true
	if st.kind == DistinctAgg {
		st.seen[v] = struct{}{}
		return
	}
	if f, ok := v.AsFloat(); ok {
		st.sum += f
		if f < st.min {
			st.min = f
		}
		if f > st.max {
			st.max = f
		}
	}
}

func (st *aggState) observeRow() { st.count++; st.any = true }

func (st *aggState) result() value.Value {
	switch st.kind {
	case CountAgg:
		return value.Int(st.count)
	case DistinctAgg:
		return value.Int(int64(len(st.seen)))
	case SumAgg:
		if !st.any {
			return value.NA()
		}
		return value.Float(st.sum)
	case AvgAgg:
		if st.count == 0 {
			return value.NA()
		}
		return value.Float(st.sum / float64(st.count))
	case MinAgg:
		if !st.any {
			return value.NA()
		}
		return value.Float(st.min)
	case MaxAgg:
		if !st.any {
			return value.NA()
		}
		return value.Float(st.max)
	}
	return value.NA()
}

func aggResultKind(k AggKind) value.Kind {
	switch k {
	case CountAgg, DistinctAgg:
		return value.IntKind
	}
	return value.FloatKind
}

// GroupBy groups rows by the named key columns and computes the requested
// aggregates per group. The result has the key columns followed by one
// column per AggSpec, with groups ordered by key values ascending.
func (t *Table) GroupBy(keys []string, aggs []AggSpec) (*Table, error) {
	keyIdx := make([]int, len(keys))
	for k, name := range keys {
		j, ok := t.schema.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("storage: unknown group column %q", name)
		}
		keyIdx[k] = j
	}
	aggIdx := make([]int, len(aggs))
	for k, a := range aggs {
		if a.Column == "" {
			if a.Kind != CountAgg {
				return nil, fmt.Errorf("storage: aggregate %s requires a column", a.Kind)
			}
			aggIdx[k] = -1
			continue
		}
		j, ok := t.schema.Lookup(a.Column)
		if !ok {
			return nil, fmt.Errorf("storage: unknown aggregate column %q", a.Column)
		}
		aggIdx[k] = j
	}

	type group struct {
		keyVals []value.Value
		states  []*aggState
	}
	groups := make(map[string]*group)
	var order []string // group keys in first-seen order, sorted later

	keyBuf := make([]value.Value, len(keys))
	for i := 0; i < t.n; i++ {
		for k, j := range keyIdx {
			keyBuf[k] = t.cols[j].Value(i)
		}
		gk := groupKey(keyBuf)
		g, ok := groups[gk]
		if !ok {
			g = &group{keyVals: append([]value.Value(nil), keyBuf...), states: make([]*aggState, len(aggs))}
			for k := range aggs {
				g.states[k] = newAggState(aggs[k].Kind)
			}
			groups[gk] = g
			order = append(order, gk)
		}
		for k, j := range aggIdx {
			if j < 0 {
				g.states[k].observeRow()
			} else {
				g.states[k].observe(t.cols[j].Value(i))
			}
		}
	}

	// Deterministic output: sort groups by their key tuple.
	sort.Slice(order, func(a, b int) bool {
		ga, gb := groups[order[a]], groups[order[b]]
		for k := range ga.keyVals {
			if c := ga.keyVals[k].Compare(gb.keyVals[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})

	fields := make([]Field, 0, len(keys)+len(aggs))
	for k, name := range keys {
		fields = append(fields, Field{Name: name, Kind: t.schema.Field(keyIdx[k]).Kind})
	}
	for _, a := range aggs {
		name := a.As
		if name == "" {
			name = a.Kind.String()
			if a.Column != "" {
				name += "_" + a.Column
			}
		}
		fields = append(fields, Field{Name: name, Kind: aggResultKind(a.Kind)})
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	out := MustTable(schema)
	for _, gk := range order {
		g := groups[gk]
		row := make([]value.Value, 0, len(fields))
		row = append(row, g.keyVals...)
		for _, st := range g.states {
			row = append(row, st.result())
		}
		if err := out.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Distinct returns the distinct rows of the named columns, sorted
// ascending.
func (t *Table) Distinct(names ...string) (*Table, error) {
	proj, err := t.Project(names...)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]struct{}, proj.Len())
	out := MustTable(proj.schema)
	for i := 0; i < proj.Len(); i++ {
		row := proj.Row(i)
		gk := groupKey(row)
		if _, dup := seen[gk]; dup {
			continue
		}
		seen[gk] = struct{}{}
		if err := out.AppendRow(row); err != nil {
			return nil, err
		}
	}
	keys := make([]SortKey, len(names))
	for i, n := range names {
		keys[i] = SortKey{Column: n}
	}
	return out.Sort(keys...)
}

// FloatStats summarises the non-NA numeric content of a column.
type FloatStats struct {
	Count    int
	NACount  int
	Mean     float64
	Std      float64
	Min, Max float64
}

// Stats computes summary statistics for the named numeric column.
func (t *Table) Stats(name string) (FloatStats, error) {
	col, err := t.Column(name)
	if err != nil {
		return FloatStats{}, err
	}
	var s FloatStats
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	var sum, sumSq float64
	for i := 0; i < col.Len(); i++ {
		v := col.Value(i)
		if v.IsNA() {
			s.NACount++
			continue
		}
		f, ok := v.AsFloat()
		if !ok {
			continue
		}
		s.Count++
		sum += f
		sumSq += f * f
		if f < s.Min {
			s.Min = f
		}
		if f > s.Max {
			s.Max = f
		}
	}
	if s.Count > 0 {
		s.Mean = sum / float64(s.Count)
		variance := sumSq/float64(s.Count) - s.Mean*s.Mean
		if variance < 0 {
			variance = 0
		}
		s.Std = math.Sqrt(variance)
	} else {
		s.Min, s.Max = 0, 0
	}
	return s, nil
}

// Mode returns the most frequent non-NA value of the named column, with
// ties broken by value order. The boolean result is false when the column
// holds no non-NA values.
func (t *Table) Mode(name string) (value.Value, bool, error) {
	col, err := t.Column(name)
	if err != nil {
		return value.NA(), false, err
	}
	counts := make(map[value.Value]int)
	for i := 0; i < col.Len(); i++ {
		v := col.Value(i)
		if v.IsNA() {
			continue
		}
		counts[v]++
	}
	if len(counts) == 0 {
		return value.NA(), false, nil
	}
	var best value.Value
	bestN := -1
	for v, n := range counts {
		if n > bestN || (n == bestN && v.Less(best)) {
			best, bestN = v, n
		}
	}
	return best, true, nil
}
