package storage

import (
	"testing"
	"testing/quick"

	"github.com/ddgms/ddgms/internal/value"
)

func visitsTable(t *testing.T) *Table {
	t.Helper()
	tbl := MustTable(patientSchema(t))
	rows := [][]value.Value{
		patientRow(1, "M", 72, true, 1),
		patientRow(1, "M", 73, true, 5),
		patientRow(2, "F", 77, true, 2),
		patientRow(3, "F", 45, false, 3),
		patientRow(4, "M", 45, false, 4),
		patientRow(5, "F", 77, true, 6),
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestFilterAndWhere(t *testing.T) {
	tbl := visitsTable(t)
	males, err := tbl.Where("Gender", value.Str("M"))
	if err != nil {
		t.Fatal(err)
	}
	if males.Len() != 3 {
		t.Errorf("males = %d rows, want 3", males.Len())
	}
	old := tbl.Filter(func(tb *Table, i int) bool {
		return tb.MustValue(i, "Age").Float() > 70
	})
	if old.Len() != 4 {
		t.Errorf("old = %d rows, want 4", old.Len())
	}
	if _, err := tbl.Where("Nope", value.NA()); err == nil {
		t.Error("Where unknown column must fail")
	}
}

func TestProject(t *testing.T) {
	tbl := visitsTable(t)
	p, err := tbl.Project("Gender", "Diabetes")
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema().Len() != 2 || p.Len() != tbl.Len() {
		t.Errorf("projection shape %dx%d", p.Len(), p.Schema().Len())
	}
	if _, err := tbl.Project("Nope"); err == nil {
		t.Error("Project unknown column must fail")
	}
}

func TestSort(t *testing.T) {
	tbl := visitsTable(t)
	sorted, err := tbl.Sort(SortKey{Column: "Age", Descending: true}, SortKey{Column: "PatientID"})
	if err != nil {
		t.Fatal(err)
	}
	prev := sorted.MustValue(0, "Age").Float()
	for i := 1; i < sorted.Len(); i++ {
		cur := sorted.MustValue(i, "Age").Float()
		if cur > prev {
			t.Fatalf("row %d age %g after %g: not descending", i, cur, prev)
		}
		prev = cur
	}
	// Ties (age 77 and 45) must break by ascending PatientID.
	if sorted.MustValue(0, "PatientID").Int() != 2 || sorted.MustValue(1, "PatientID").Int() != 5 {
		t.Errorf("tie-break order wrong: %v, %v",
			sorted.MustValue(0, "PatientID"), sorted.MustValue(1, "PatientID"))
	}
	if _, err := tbl.Sort(SortKey{Column: "Nope"}); err == nil {
		t.Error("Sort unknown column must fail")
	}
}

func TestGroupByCount(t *testing.T) {
	tbl := visitsTable(t)
	g, err := tbl.GroupBy([]string{"Gender"}, []AggSpec{{Kind: CountAgg, As: "N"}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("groups = %d", g.Len())
	}
	// Sorted ascending: F before M.
	if g.MustValue(0, "Gender").Str() != "F" || g.MustValue(0, "N").Int() != 3 {
		t.Errorf("group 0 = %v/%v", g.MustValue(0, "Gender"), g.MustValue(0, "N"))
	}
	if g.MustValue(1, "Gender").Str() != "M" || g.MustValue(1, "N").Int() != 3 {
		t.Errorf("group 1 = %v/%v", g.MustValue(1, "Gender"), g.MustValue(1, "N"))
	}
}

func TestGroupByAggregates(t *testing.T) {
	tbl := visitsTable(t)
	g, err := tbl.GroupBy([]string{"Diabetes"}, []AggSpec{
		{Kind: AvgAgg, Column: "Age", As: "AvgAge"},
		{Kind: MinAgg, Column: "Age", As: "MinAge"},
		{Kind: MaxAgg, Column: "Age", As: "MaxAge"},
		{Kind: SumAgg, Column: "Age", As: "SumAge"},
		{Kind: DistinctAgg, Column: "PatientID", As: "Patients"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// false group: ages 45, 45 → avg 45, 2 distinct patients.
	if g.MustValue(0, "Diabetes").Bool() != false {
		t.Fatal("group order: false must sort first")
	}
	if avg := g.MustValue(0, "AvgAge").Float(); avg != 45 {
		t.Errorf("avg = %g", avg)
	}
	if n := g.MustValue(0, "Patients").Int(); n != 2 {
		t.Errorf("distinct patients = %d", n)
	}
	// true group: ages 72,73,77,77 over 3 distinct patients.
	if n := g.MustValue(1, "Patients").Int(); n != 3 {
		t.Errorf("diabetic distinct patients = %d", n)
	}
	if mn, mx := g.MustValue(1, "MinAge").Float(), g.MustValue(1, "MaxAge").Float(); mn != 72 || mx != 77 {
		t.Errorf("min/max = %g/%g", mn, mx)
	}
	if s := g.MustValue(1, "SumAge").Float(); s != 72+73+77+77 {
		t.Errorf("sum = %g", s)
	}
}

func TestGroupByIgnoresNAMeasures(t *testing.T) {
	tbl := visitsTable(t)
	tbl.Set(0, "Age", value.NA())
	g, err := tbl.GroupBy([]string{"Gender"}, []AggSpec{
		{Kind: CountAgg, Column: "Age", As: "AgeN"},
		{Kind: CountAgg, As: "RowN"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// M group lost one Age observation but keeps three rows.
	if g.MustValue(1, "AgeN").Int() != 2 || g.MustValue(1, "RowN").Int() != 3 {
		t.Errorf("M counts = %v rows %v", g.MustValue(1, "AgeN"), g.MustValue(1, "RowN"))
	}
}

func TestGroupByErrors(t *testing.T) {
	tbl := visitsTable(t)
	if _, err := tbl.GroupBy([]string{"Nope"}, nil); err == nil {
		t.Error("unknown key column must fail")
	}
	if _, err := tbl.GroupBy([]string{"Gender"}, []AggSpec{{Kind: SumAgg}}); err == nil {
		t.Error("sum without column must fail")
	}
	if _, err := tbl.GroupBy([]string{"Gender"}, []AggSpec{{Kind: SumAgg, Column: "Nope"}}); err == nil {
		t.Error("unknown measure column must fail")
	}
}

func TestEmptyGroupAggregatesAreNA(t *testing.T) {
	// A group whose measure is entirely NA yields NA for sum/avg/min/max.
	schema := MustSchema(Field{"K", value.StringKind}, Field{"V", value.FloatKind})
	tbl := MustTable(schema)
	tbl.AppendRow([]value.Value{value.Str("a"), value.NA()})
	g, err := tbl.GroupBy([]string{"K"}, []AggSpec{
		{Kind: SumAgg, Column: "V", As: "S"},
		{Kind: AvgAgg, Column: "V", As: "A"},
		{Kind: MinAgg, Column: "V", As: "Mn"},
		{Kind: MaxAgg, Column: "V", As: "Mx"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"S", "A", "Mn", "Mx"} {
		if v := g.MustValue(0, col); !v.IsNA() {
			t.Errorf("%s = %v, want NA", col, v)
		}
	}
}

func TestDistinct(t *testing.T) {
	tbl := visitsTable(t)
	d, err := tbl.Distinct("Gender", "Diabetes")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 4 {
		t.Errorf("distinct rows = %d, want 4", d.Len())
	}
	// Sorted: (F,false),(F,true),(M,false),(M,true)
	if d.MustValue(0, "Gender").Str() != "F" || d.MustValue(0, "Diabetes").Bool() {
		t.Errorf("first distinct = %v/%v", d.MustValue(0, "Gender"), d.MustValue(0, "Diabetes"))
	}
}

func TestStats(t *testing.T) {
	tbl := visitsTable(t)
	tbl.Set(0, "Age", value.NA())
	s, err := tbl.Stats("Age")
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 5 || s.NACount != 1 {
		t.Errorf("count=%d na=%d", s.Count, s.NACount)
	}
	if s.Min != 45 || s.Max != 77 {
		t.Errorf("min/max = %g/%g", s.Min, s.Max)
	}
	wantMean := (73.0 + 77 + 45 + 45 + 77) / 5
	if diff := s.Mean - wantMean; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("mean = %g want %g", s.Mean, wantMean)
	}
	if _, err := tbl.Stats("Nope"); err == nil {
		t.Error("Stats unknown column must fail")
	}
}

func TestStatsEmpty(t *testing.T) {
	tbl := MustTable(MustSchema(Field{"V", value.FloatKind}))
	s, err := tbl.Stats("V")
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 0 || s.Min != 0 || s.Max != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestMode(t *testing.T) {
	tbl := visitsTable(t)
	m, ok, err := tbl.Mode("Gender")
	if err != nil || !ok {
		t.Fatalf("Mode: %v ok=%v", err, ok)
	}
	// 3 F vs 3 M: tie broken by value order → F.
	if m.Str() != "F" {
		t.Errorf("mode = %v", m)
	}
	empty := MustTable(MustSchema(Field{"V", value.StringKind}))
	if _, ok, _ := empty.Mode("V"); ok {
		t.Error("mode of empty column must report !ok")
	}
}

func TestParseAggKind(t *testing.T) {
	for s, want := range map[string]AggKind{
		"count": CountAgg, "sum": SumAgg, "avg": AvgAgg, "mean": AvgAgg,
		"min": MinAgg, "max": MaxAgg, "distinct": DistinctAgg,
	} {
		got, err := ParseAggKind(s)
		if err != nil || got != want {
			t.Errorf("ParseAggKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseAggKind("median"); err == nil {
		t.Error("unknown aggregate must fail")
	}
	if AggKind(42).String() != "AggKind(42)" {
		t.Errorf("unknown AggKind string = %q", AggKind(42).String())
	}
}

// Property: group-by counts always sum to the table length.
func TestQuickGroupCountsSumToLen(t *testing.T) {
	f := func(genders []bool) bool {
		tbl := MustTable(MustSchema(Field{"G", value.StringKind}))
		for _, b := range genders {
			g := "M"
			if b {
				g = "F"
			}
			if err := tbl.AppendRow([]value.Value{value.Str(g)}); err != nil {
				return false
			}
		}
		out, err := tbl.GroupBy([]string{"G"}, []AggSpec{{Kind: CountAgg, As: "N"}})
		if err != nil {
			return false
		}
		var total int64
		for i := 0; i < out.Len(); i++ {
			total += out.MustValue(i, "N").Int()
		}
		return total == int64(len(genders))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Filter(p) ∪ Filter(!p) has the same number of rows as the table.
func TestQuickFilterPartition(t *testing.T) {
	f := func(ages []uint8) bool {
		tbl := MustTable(MustSchema(Field{"A", value.IntKind}))
		for _, a := range ages {
			tbl.AppendRow([]value.Value{value.Int(int64(a))})
		}
		p := func(tb *Table, i int) bool { return tb.MustValue(i, "A").Int() >= 60 }
		yes := tbl.Filter(p)
		no := tbl.Filter(func(tb *Table, i int) bool { return !p(tb, i) })
		return yes.Len()+no.Len() == tbl.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: sorting is idempotent and preserves row count.
func TestQuickSortIdempotent(t *testing.T) {
	f := func(vals []int16) bool {
		tbl := MustTable(MustSchema(Field{"V", value.IntKind}))
		for _, v := range vals {
			tbl.AppendRow([]value.Value{value.Int(int64(v))})
		}
		s1, err := tbl.Sort(SortKey{Column: "V"})
		if err != nil {
			return false
		}
		s2, err := s1.Sort(SortKey{Column: "V"})
		if err != nil || s1.Len() != len(vals) {
			return false
		}
		for i := 0; i < s1.Len(); i++ {
			if !s1.MustValue(i, "V").Equal(s2.MustValue(i, "V")) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
