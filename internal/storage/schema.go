// Package storage implements the columnar table engine that underlies the
// DD-DGMS platform: typed columns with null bitmaps, a schema with named
// fields, relational operations (filter, project, sort, group-by,
// distinct), CSV interchange and a compact binary persistence format.
//
// The engine plays the role Microsoft SQL Server played in the paper's
// prototype: the relational substrate on which the ETL layer and the
// dimensional warehouse are built.
package storage

import (
	"fmt"

	"github.com/ddgms/ddgms/internal/value"
)

// Field describes one column of a table: its name and value kind.
type Field struct {
	Name string
	Kind value.Kind
}

// Schema is an ordered list of fields with name-based lookup.
type Schema struct {
	fields []Field
	index  map[string]int
}

// NewSchema builds a schema from fields. Field names must be non-empty and
// unique.
func NewSchema(fields ...Field) (*Schema, error) {
	s := &Schema{
		fields: make([]Field, len(fields)),
		index:  make(map[string]int, len(fields)),
	}
	copy(s.fields, fields)
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("storage: field %d has empty name", i)
		}
		if _, dup := s.index[f.Name]; dup {
			return nil, fmt.Errorf("storage: duplicate field name %q", f.Name)
		}
		s.index[f.Name] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. It is intended for
// statically known schemas in tests and generators.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of fields.
func (s *Schema) Len() int { return len(s.fields) }

// Field returns the i-th field.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Fields returns a copy of all fields in order.
func (s *Schema) Fields() []Field {
	out := make([]Field, len(s.fields))
	copy(out, s.fields)
	return out
}

// Lookup returns the position of the named field and whether it exists.
func (s *Schema) Lookup(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Names returns the field names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.fields))
	for i, f := range s.fields {
		out[i] = f.Name
	}
	return out
}

// Equal reports whether two schemas have identical fields in identical
// order.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.fields {
		if s.fields[i] != o.fields[i] {
			return false
		}
	}
	return true
}

// Select builds a new schema containing the named fields in the given
// order. It returns an error if any name is unknown.
func (s *Schema) Select(names ...string) (*Schema, error) {
	fields := make([]Field, 0, len(names))
	for _, n := range names {
		i, ok := s.index[n]
		if !ok {
			return nil, fmt.Errorf("storage: unknown field %q", n)
		}
		fields = append(fields, s.fields[i])
	}
	return NewSchema(fields...)
}
