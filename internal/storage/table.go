package storage

import (
	"fmt"
	"time"

	"github.com/ddgms/ddgms/internal/exec"
	"github.com/ddgms/ddgms/internal/value"
)

// timeUnix is a tiny indirection so column.go does not import time
// directly at more than one site.
func timeUnix(sec, nsec int64) time.Time { return time.Unix(sec, nsec).UTC() }

// Table is a columnar table: a schema plus one column per field, all the
// same length. Tables are not safe for concurrent mutation; concurrent
// reads are safe once loading is complete.
type Table struct {
	schema *Schema
	cols   []Column
	n      int
}

// NewTable creates an empty table with the given schema.
func NewTable(schema *Schema) (*Table, error) {
	t := &Table{schema: schema, cols: make([]Column, schema.Len())}
	for i := 0; i < schema.Len(); i++ {
		c, err := NewColumn(schema.Field(i).Kind)
		if err != nil {
			return nil, fmt.Errorf("storage: column %q: %w", schema.Field(i).Name, err)
		}
		t.cols[i] = c
	}
	return t, nil
}

// MustTable is like NewTable but panics on error.
func MustTable(schema *Schema) *Table {
	t, err := NewTable(schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int { return t.n }

// AppendRow adds one row. The slice must have one value per field; each
// value must be NA or match the field kind. On error the table is left
// unchanged.
func (t *Table) AppendRow(row []value.Value) error {
	if len(row) != t.schema.Len() {
		return fmt.Errorf("storage: row has %d values, schema has %d fields", len(row), t.schema.Len())
	}
	for i, v := range row {
		if !v.IsNA() && v.Kind() != t.schema.Field(i).Kind {
			return fmt.Errorf("storage: field %q: %v value in %v column",
				t.schema.Field(i).Name, v.Kind(), t.schema.Field(i).Kind)
		}
	}
	for i, v := range row {
		if err := t.cols[i].Append(v); err != nil {
			// Unreachable after the pre-check, but keep columns consistent.
			panic(fmt.Sprintf("storage: append after validation failed: %v", err))
		}
	}
	t.n++
	return nil
}

// Row materialises row i into a fresh slice.
func (t *Table) Row(i int) []value.Value {
	row := make([]value.Value, len(t.cols))
	for j, c := range t.cols {
		row[j] = c.Value(i)
	}
	return row
}

// Value returns the value at row i of the named column.
func (t *Table) Value(i int, name string) (value.Value, error) {
	j, ok := t.schema.Lookup(name)
	if !ok {
		return value.NA(), fmt.Errorf("storage: unknown column %q", name)
	}
	return t.cols[j].Value(i), nil
}

// MustValue is like Value but panics on unknown columns. Intended for
// callers that have already validated the column name.
func (t *Table) MustValue(i int, name string) value.Value {
	v, err := t.Value(i, name)
	if err != nil {
		panic(err)
	}
	return v
}

// Set replaces the value at row i of the named column.
func (t *Table) Set(i int, name string, v value.Value) error {
	j, ok := t.schema.Lookup(name)
	if !ok {
		return fmt.Errorf("storage: unknown column %q", name)
	}
	return t.cols[j].Set(i, v)
}

// Column returns the named column for direct scanning.
func (t *Table) Column(name string) (Column, error) {
	j, ok := t.schema.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("storage: unknown column %q", name)
	}
	return t.cols[j], nil
}

// MustColumn is like Column but panics on unknown columns.
func (t *Table) MustColumn(name string) Column {
	c, err := t.Column(name)
	if err != nil {
		panic(err)
	}
	return c
}

// ColumnAt returns the column at position j.
func (t *Table) ColumnAt(j int) Column { return t.cols[j] }

// Dict returns the cached dictionary-encoded view of the named column
// (see Column.Dict).
func (t *Table) Dict(name string) (exec.CodedColumn, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	return c.Dict(), nil
}

// AppendTable appends all rows of o, whose schema must equal t's.
func (t *Table) AppendTable(o *Table) error {
	if !t.schema.Equal(o.schema) {
		return fmt.Errorf("storage: appending table with mismatched schema")
	}
	for i := 0; i < o.Len(); i++ {
		if err := t.AppendRow(o.Row(i)); err != nil {
			return err
		}
	}
	return nil
}

// AddColumn appends a new field populated by fn(row index). The returned
// error is non-nil if the name already exists or a produced value has the
// wrong kind.
func (t *Table) AddColumn(f Field, fn func(i int) value.Value) error {
	if _, exists := t.schema.Lookup(f.Name); exists {
		return fmt.Errorf("storage: column %q already exists", f.Name)
	}
	col, err := NewColumn(f.Kind)
	if err != nil {
		return err
	}
	for i := 0; i < t.n; i++ {
		v := fn(i)
		if err := col.Append(v); err != nil {
			return fmt.Errorf("storage: populating %q row %d: %w", f.Name, i, err)
		}
	}
	ns, err := NewSchema(append(t.schema.Fields(), f)...)
	if err != nil {
		return err
	}
	t.schema = ns
	t.cols = append(t.cols, col)
	return nil
}

// Clone returns a deep, independent copy of the table.
func (t *Table) Clone() *Table {
	out := MustTable(t.schema)
	for i := 0; i < t.n; i++ {
		if err := out.AppendRow(t.Row(i)); err != nil {
			panic(err)
		}
	}
	return out
}
