package storage

import (
	"testing"
	"time"

	"github.com/ddgms/ddgms/internal/value"
)

func patientSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Field{"PatientID", value.IntKind},
		Field{"Gender", value.StringKind},
		Field{"Age", value.FloatKind},
		Field{"Diabetes", value.BoolKind},
		Field{"VisitDate", value.TimeKind},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func patientRow(id int64, gender string, age float64, diab bool, day int) []value.Value {
	return []value.Value{
		value.Int(id), value.Str(gender), value.Float(age), value.Bool(diab),
		value.Time(time.Date(2012, 1, day, 0, 0, 0, 0, time.UTC)),
	}
}

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	if _, err := NewSchema(Field{"A", value.IntKind}, Field{"A", value.FloatKind}); err == nil {
		t.Error("duplicate field name must be rejected")
	}
	if _, err := NewSchema(Field{"", value.IntKind}); err == nil {
		t.Error("empty field name must be rejected")
	}
}

func TestSchemaLookupAndSelect(t *testing.T) {
	s := patientSchema(t)
	if i, ok := s.Lookup("Age"); !ok || i != 2 {
		t.Errorf("Lookup(Age) = %d,%v", i, ok)
	}
	if _, ok := s.Lookup("Nope"); ok {
		t.Error("Lookup(Nope) should fail")
	}
	sub, err := s.Select("Gender", "PatientID")
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if sub.Len() != 2 || sub.Field(0).Name != "Gender" || sub.Field(1).Name != "PatientID" {
		t.Errorf("Select order wrong: %v", sub.Names())
	}
	if _, err := s.Select("Missing"); err == nil {
		t.Error("Select of unknown field should fail")
	}
}

func TestAppendRowAndReadBack(t *testing.T) {
	tbl := MustTable(patientSchema(t))
	rows := [][]value.Value{
		patientRow(1, "M", 64, true, 1),
		patientRow(2, "F", 71.5, false, 2),
		{value.Int(3), value.NA(), value.NA(), value.NA(), value.NA()},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r); err != nil {
			t.Fatalf("AppendRow: %v", err)
		}
	}
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	for i, want := range rows {
		got := tbl.Row(i)
		for j := range want {
			if !got[j].Equal(want[j]) {
				t.Errorf("row %d col %d = %v, want %v", i, j, got[j], want[j])
			}
		}
	}
	if v := tbl.MustValue(1, "Gender"); v.Str() != "F" {
		t.Errorf("MustValue = %v", v)
	}
}

func TestAppendRowValidation(t *testing.T) {
	tbl := MustTable(patientSchema(t))
	if err := tbl.AppendRow([]value.Value{value.Int(1)}); err == nil {
		t.Error("short row must be rejected")
	}
	bad := patientRow(1, "M", 64, true, 1)
	bad[2] = value.Str("old") // wrong kind for Age
	if err := tbl.AppendRow(bad); err == nil {
		t.Error("kind mismatch must be rejected")
	}
	if tbl.Len() != 0 {
		t.Errorf("failed appends must not change length, got %d", tbl.Len())
	}
}

func TestSetAndNullBitmap(t *testing.T) {
	tbl := MustTable(patientSchema(t))
	if err := tbl.AppendRow(patientRow(1, "M", 64, true, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Set(0, "Age", value.NA()); err != nil {
		t.Fatalf("Set NA: %v", err)
	}
	if v := tbl.MustValue(0, "Age"); !v.IsNA() {
		t.Errorf("after Set NA, got %v", v)
	}
	if err := tbl.Set(0, "Age", value.Float(65)); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if v := tbl.MustValue(0, "Age"); v.Float() != 65 {
		t.Errorf("after Set, got %v", v)
	}
	if err := tbl.Set(0, "Age", value.Str("x")); err == nil {
		t.Error("Set with wrong kind must fail")
	}
	if err := tbl.Set(0, "Nope", value.NA()); err == nil {
		t.Error("Set on unknown column must fail")
	}
}

func TestNullBitmapAcrossWordBoundaries(t *testing.T) {
	// Exercise >64 rows so the bitmap spans multiple words.
	schema := MustSchema(Field{"X", value.IntKind})
	tbl := MustTable(schema)
	for i := 0; i < 200; i++ {
		v := value.Int(int64(i))
		if i%3 == 0 {
			v = value.NA()
		}
		if err := tbl.AppendRow([]value.Value{v}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		v := tbl.MustValue(i, "X")
		if i%3 == 0 {
			if !v.IsNA() {
				t.Fatalf("row %d should be NA, got %v", i, v)
			}
		} else if v.Int() != int64(i) {
			t.Fatalf("row %d = %v", i, v)
		}
	}
}

func TestStringDictionaryEncoding(t *testing.T) {
	schema := MustSchema(Field{"G", value.StringKind})
	tbl := MustTable(schema)
	for i := 0; i < 1000; i++ {
		g := "M"
		if i%2 == 0 {
			g = "F"
		}
		if err := tbl.AppendRow([]value.Value{value.Str(g)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := DictSize(tbl.MustColumn("G")); n != 2 {
		t.Errorf("dictionary size = %d, want 2", n)
	}
}

func TestAddColumnAndClone(t *testing.T) {
	tbl := MustTable(patientSchema(t))
	tbl.AppendRow(patientRow(1, "M", 64, true, 1))
	tbl.AppendRow(patientRow(2, "F", 40, false, 2))
	err := tbl.AddColumn(Field{"AgeBand", value.StringKind}, func(i int) value.Value {
		if tbl.MustValue(i, "Age").Float() >= 60 {
			return value.Str("60-80")
		}
		return value.Str("40-60")
	})
	if err != nil {
		t.Fatalf("AddColumn: %v", err)
	}
	if v := tbl.MustValue(0, "AgeBand"); v.Str() != "60-80" {
		t.Errorf("AgeBand = %v", v)
	}
	if err := tbl.AddColumn(Field{"AgeBand", value.StringKind}, nil); err == nil {
		t.Error("duplicate AddColumn must fail")
	}
	cl := tbl.Clone()
	cl.Set(0, "Gender", value.Str("F"))
	if tbl.MustValue(0, "Gender").Str() != "M" {
		t.Error("Clone must be independent")
	}
}

func TestAppendTable(t *testing.T) {
	a := MustTable(patientSchema(t))
	b := MustTable(patientSchema(t))
	a.AppendRow(patientRow(1, "M", 64, true, 1))
	b.AppendRow(patientRow(2, "F", 70, false, 2))
	if err := a.AppendTable(b); err != nil {
		t.Fatalf("AppendTable: %v", err)
	}
	if a.Len() != 2 {
		t.Errorf("Len = %d", a.Len())
	}
	other := MustTable(MustSchema(Field{"X", value.IntKind}))
	if err := a.AppendTable(other); err == nil {
		t.Error("mismatched schema must fail")
	}
}
