// Package value implements the typed value system used throughout the
// DD-DGMS platform. Clinical data is heterogeneous — demographics are
// strings, blood measures are floats, visit counts are integers, test dates
// are timestamps — and almost every attribute can be missing for any given
// attendance. Value is a small immutable tagged union covering exactly
// those cases, with a first-class NA (missing) state.
//
// Value contains only comparable fields, so it can be used directly as a
// map key; this property is load-bearing for dimension member lookup in the
// warehouse and for group-by in the storage engine.
package value

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind identifies the dynamic type held by a Value.
type Kind uint8

// The supported kinds. NA is the zero Kind so that the zero Value is a
// missing value, which is the correct default for clinical records.
const (
	NAKind Kind = iota
	IntKind
	FloatKind
	StringKind
	BoolKind
	TimeKind
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case NAKind:
		return "na"
	case IntKind:
		return "int"
	case FloatKind:
		return "float"
	case StringKind:
		return "string"
	case BoolKind:
		return "bool"
	case TimeKind:
		return "time"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is an immutable tagged union of the supported clinical value types.
// The zero Value is NA.
type Value struct {
	kind Kind
	i    int64   // IntKind, BoolKind (0/1), TimeKind (unix nanoseconds)
	f    float64 // FloatKind
	s    string  // StringKind
}

// NA returns the missing value.
func NA() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: IntKind, i: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: FloatKind, f: f} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: StringKind, s: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: BoolKind, i: i}
}

// Time returns a timestamp value with nanosecond precision.
func Time(t time.Time) Value { return Value{kind: TimeKind, i: t.UnixNano()} }

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNA reports whether v is the missing value.
func (v Value) IsNA() bool { return v.kind == NAKind }

// Int returns the integer payload. It panics if the kind is not IntKind.
func (v Value) Int() int64 {
	if v.kind != IntKind {
		panic(fmt.Sprintf("value: Int called on %s value", v.kind))
	}
	return v.i
}

// Float returns the float payload. It panics if the kind is not FloatKind.
func (v Value) Float() float64 {
	if v.kind != FloatKind {
		panic(fmt.Sprintf("value: Float called on %s value", v.kind))
	}
	return v.f
}

// Str returns the string payload. It panics if the kind is not StringKind.
func (v Value) Str() string {
	if v.kind != StringKind {
		panic(fmt.Sprintf("value: Str called on %s value", v.kind))
	}
	return v.s
}

// Bool returns the boolean payload. It panics if the kind is not BoolKind.
func (v Value) Bool() bool {
	if v.kind != BoolKind {
		panic(fmt.Sprintf("value: Bool called on %s value", v.kind))
	}
	return v.i != 0
}

// Time returns the timestamp payload in UTC. It panics if the kind is not
// TimeKind.
func (v Value) Time() time.Time {
	if v.kind != TimeKind {
		panic(fmt.Sprintf("value: Time called on %s value", v.kind))
	}
	return time.Unix(0, v.i).UTC()
}

// AsFloat coerces numeric values (Int, Float, Bool) to float64. The second
// result reports whether the coercion was possible. NA and non-numeric
// kinds return (0, false).
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case IntKind, BoolKind:
		return float64(v.i), true
	case FloatKind:
		return v.f, true
	}
	return 0, false
}

// AsInt coerces numeric values to int64, truncating floats toward zero.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case IntKind, BoolKind:
		return v.i, true
	case FloatKind:
		return int64(v.f), true
	}
	return 0, false
}

// String renders the value for display. NA renders as "NA". Timestamps use
// RFC 3339. This is the format emitted by CSV export and parsed back by
// Parse.
func (v Value) String() string {
	switch v.kind {
	case NAKind:
		return "NA"
	case IntKind:
		return strconv.FormatInt(v.i, 10)
	case FloatKind:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case StringKind:
		return v.s
	case BoolKind:
		return strconv.FormatBool(v.i != 0)
	case TimeKind:
		return v.Time().Format(time.RFC3339)
	}
	return "NA"
}

// Equal reports whether two values have the same kind and payload. NA is
// equal to NA (this is the map-key semantics, not SQL three-valued logic;
// callers that need SQL semantics must test IsNA first).
func (v Value) Equal(o Value) bool { return v == o }

// Compare orders two values. NA sorts before everything. Values of
// different kinds order by kind. Within a kind the natural order applies.
// The result is -1, 0 or +1.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case NAKind:
		return 0
	case IntKind, BoolKind, TimeKind:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	case FloatKind:
		switch {
		case v.f < o.f:
			return -1
		case v.f > o.f:
			return 1
		}
		return 0
	case StringKind:
		return strings.Compare(v.s, o.s)
	}
	return 0
}

// Less reports whether v orders before o under Compare.
func (v Value) Less(o Value) bool { return v.Compare(o) < 0 }

// Parse converts a textual field into a Value using permissive clinical
// conventions: empty string, "NA", "N/A", "null", "missing" and "?" parse
// as NA; then integer, float, boolean ("true"/"false", "yes"/"no",
// "y"/"n") and RFC 3339 / "2006-01-02" timestamps are tried in order;
// anything else is a string.
func Parse(s string) Value {
	t := strings.TrimSpace(s)
	switch strings.ToLower(t) {
	case "", "na", "n/a", "null", "nil", "missing", "?":
		return NA()
	case "true", "yes", "y":
		return Bool(true)
	case "false", "no", "n":
		return Bool(false)
	}
	if i, err := strconv.ParseInt(t, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil {
		return Float(f)
	}
	if tm, err := time.Parse(time.RFC3339, t); err == nil {
		return Time(tm)
	}
	if tm, err := time.Parse("2006-01-02", t); err == nil {
		return Time(tm)
	}
	return Str(t)
}

// ParseAs converts a textual field into a Value of the requested kind,
// returning an error if the text cannot represent that kind. NA spellings
// are accepted for every kind.
func ParseAs(s string, k Kind) (Value, error) {
	t := strings.TrimSpace(s)
	switch strings.ToLower(t) {
	case "", "na", "n/a", "null", "nil", "missing", "?":
		return NA(), nil
	}
	switch k {
	case NAKind:
		return NA(), nil
	case IntKind:
		i, err := strconv.ParseInt(t, 10, 64)
		if err != nil {
			return NA(), fmt.Errorf("value: parsing %q as int: %w", s, err)
		}
		return Int(i), nil
	case FloatKind:
		f, err := strconv.ParseFloat(t, 64)
		if err != nil {
			return NA(), fmt.Errorf("value: parsing %q as float: %w", s, err)
		}
		return Float(f), nil
	case StringKind:
		return Str(t), nil
	case BoolKind:
		switch strings.ToLower(t) {
		case "true", "yes", "y", "1":
			return Bool(true), nil
		case "false", "no", "n", "0":
			return Bool(false), nil
		}
		return NA(), fmt.Errorf("value: parsing %q as bool", s)
	case TimeKind:
		if tm, err := time.Parse(time.RFC3339, t); err == nil {
			return Time(tm), nil
		}
		if tm, err := time.Parse("2006-01-02", t); err == nil {
			return Time(tm), nil
		}
		return NA(), fmt.Errorf("value: parsing %q as time", s)
	}
	return NA(), fmt.Errorf("value: unknown kind %v", k)
}

// Coerce converts v to kind k where a lossless or conventional conversion
// exists (int<->float, anything->string via String, bool->int). It returns
// false when no conversion applies. NA coerces to NA of any kind.
func Coerce(v Value, k Kind) (Value, bool) {
	if v.kind == k {
		return v, true
	}
	if v.IsNA() {
		return NA(), true
	}
	switch k {
	case IntKind:
		if i, ok := v.AsInt(); ok {
			return Int(i), true
		}
	case FloatKind:
		if f, ok := v.AsFloat(); ok {
			return Float(f), true
		}
	case StringKind:
		return Str(v.String()), true
	case BoolKind:
		if i, ok := v.AsInt(); ok {
			return Bool(i != 0), true
		}
	}
	return NA(), false
}
