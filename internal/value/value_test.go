package value

import (
	"testing"
	"testing/quick"
	"time"
)

func TestZeroValueIsNA(t *testing.T) {
	var v Value
	if !v.IsNA() {
		t.Fatal("zero Value must be NA")
	}
	if v.Kind() != NAKind {
		t.Fatalf("zero Value kind = %v, want NAKind", v.Kind())
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if got := Int(42).Int(); got != 42 {
		t.Errorf("Int(42).Int() = %d", got)
	}
	if got := Float(3.5).Float(); got != 3.5 {
		t.Errorf("Float(3.5).Float() = %g", got)
	}
	if got := Str("fbg").Str(); got != "fbg" {
		t.Errorf("Str.Str() = %q", got)
	}
	if !Bool(true).Bool() || Bool(false).Bool() {
		t.Error("Bool round-trip failed")
	}
	ts := time.Date(2012, 5, 1, 10, 30, 0, 0, time.UTC)
	if got := Time(ts).Time(); !got.Equal(ts) {
		t.Errorf("Time round-trip = %v, want %v", got, ts)
	}
}

func TestAccessorPanicsOnWrongKind(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"Int on string", func() { Str("x").Int() }},
		{"Float on int", func() { Int(1).Float() }},
		{"Str on float", func() { Float(1).Str() }},
		{"Bool on NA", func() { NA().Bool() }},
		{"Time on int", func() { Int(1).Time() }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			c.fn()
		})
	}
}

func TestAsFloat(t *testing.T) {
	cases := []struct {
		v    Value
		want float64
		ok   bool
	}{
		{Int(7), 7, true},
		{Float(2.25), 2.25, true},
		{Bool(true), 1, true},
		{Bool(false), 0, true},
		{Str("7"), 0, false},
		{NA(), 0, false},
		{Time(time.Unix(0, 0)), 0, false},
	}
	for _, c := range cases {
		got, ok := c.v.AsFloat()
		if got != c.want || ok != c.ok {
			t.Errorf("%v.AsFloat() = (%g,%v), want (%g,%v)", c.v, got, ok, c.want, c.ok)
		}
	}
}

func TestAsInt(t *testing.T) {
	if i, ok := Float(7.9).AsInt(); !ok || i != 7 {
		t.Errorf("Float(7.9).AsInt() = (%d,%v), want (7,true)", i, ok)
	}
	if _, ok := Str("7").AsInt(); ok {
		t.Error("Str should not coerce to int")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NA(), "NA"},
		{Int(-5), "-5"},
		{Float(0.5), "0.5"},
		{Str("hello"), "hello"},
		{Bool(true), "true"},
		{Time(time.Date(2013, 4, 8, 0, 0, 0, 0, time.UTC)), "2013-04-08T00:00:00Z"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"", NA()},
		{"NA", NA()},
		{"n/a", NA()},
		{"?", NA()},
		{" 42 ", Int(42)},
		{"6.15", Float(6.15)},
		{"yes", Bool(true)},
		{"No", Bool(false)},
		{"2013-04-08", Time(time.Date(2013, 4, 8, 0, 0, 0, 0, time.UTC))},
		{"hypertension", Str("hypertension")},
	}
	for _, c := range cases {
		if got := Parse(c.in); !got.Equal(c.want) {
			t.Errorf("Parse(%q) = %v (%v), want %v (%v)", c.in, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestParseAs(t *testing.T) {
	v, err := ParseAs("6.1", FloatKind)
	if err != nil || v.Float() != 6.1 {
		t.Errorf("ParseAs float = %v, %v", v, err)
	}
	if _, err := ParseAs("abc", IntKind); err == nil {
		t.Error("ParseAs(abc, Int) should error")
	}
	if v, err := ParseAs("", IntKind); err != nil || !v.IsNA() {
		t.Errorf("ParseAs empty should be NA, got %v, %v", v, err)
	}
	if v, err := ParseAs("1", BoolKind); err != nil || !v.Bool() {
		t.Errorf("ParseAs(1, Bool) = %v, %v", v, err)
	}
	if _, err := ParseAs("maybe", BoolKind); err == nil {
		t.Error("ParseAs(maybe, Bool) should error")
	}
	if _, err := ParseAs("notadate", TimeKind); err == nil {
		t.Error("ParseAs(notadate, Time) should error")
	}
}

func TestCompareOrdering(t *testing.T) {
	// NA sorts first, then by kind, then natural order.
	ordered := []Value{
		NA(),
		Int(-1), Int(0), Int(5),
		Float(-2.5), Float(0.1),
		Str("a"), Str("b"),
		Bool(false), Bool(true),
		Time(time.Unix(0, 0)), Time(time.Unix(100, 0)),
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			// Same-kind entries at different positions must strictly order;
			// cross-kind entries order by kind which matches slice layout.
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueUsableAsMapKey(t *testing.T) {
	m := map[Value]int{
		Int(1):     1,
		Float(1):   2,
		Str("1"):   3,
		Bool(true): 4,
		NA():       5,
	}
	if len(m) != 5 {
		t.Fatalf("map collapsed distinct values: %d entries", len(m))
	}
	if m[Int(1)] != 1 || m[Float(1)] != 2 {
		t.Error("Int(1) and Float(1) must be distinct keys")
	}
}

func TestCoerce(t *testing.T) {
	if v, ok := Coerce(Int(3), FloatKind); !ok || v.Float() != 3 {
		t.Errorf("Coerce int->float = %v, %v", v, ok)
	}
	if v, ok := Coerce(Float(3.9), IntKind); !ok || v.Int() != 3 {
		t.Errorf("Coerce float->int = %v, %v", v, ok)
	}
	if v, ok := Coerce(Int(7), StringKind); !ok || v.Str() != "7" {
		t.Errorf("Coerce int->string = %v, %v", v, ok)
	}
	if v, ok := Coerce(NA(), FloatKind); !ok || !v.IsNA() {
		t.Errorf("Coerce NA = %v, %v", v, ok)
	}
	if _, ok := Coerce(Str("x"), FloatKind); ok {
		t.Error("Coerce string->float should fail")
	}
	if v, ok := Coerce(Int(0), BoolKind); !ok || v.Bool() {
		t.Errorf("Coerce 0->bool = %v, %v", v, ok)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		NAKind: "na", IntKind: "int", FloatKind: "float",
		StringKind: "string", BoolKind: "bool", TimeKind: "time",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind formatting = %q", Kind(99).String())
	}
}

// Property: Compare is antisymmetric and Equal is consistent with Compare==0
// for int values.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		return va.Compare(vb) == -vb.Compare(va) &&
			(va.Compare(vb) == 0) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: String/Parse round-trips for integers and floats.
func TestQuickStringParseRoundTrip(t *testing.T) {
	fi := func(a int64) bool {
		return Parse(Int(a).String()).Equal(Int(a))
	}
	if err := quick.Check(fi, nil); err != nil {
		t.Errorf("int round-trip: %v", err)
	}
	ff := func(a float64) bool {
		v := Float(a)
		got := Parse(v.String())
		// Whole-number floats deliberately re-parse as ints; both represent
		// the same number.
		gf, ok := got.AsFloat()
		return ok && gf == a
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(ff, cfg); err != nil {
		t.Errorf("float round-trip: %v", err)
	}
}

// Property: Coerce to string never fails for non-NA values.
func TestQuickCoerceStringTotal(t *testing.T) {
	f := func(a int64, b float64, s string) bool {
		for _, v := range []Value{Int(a), Float(b), Str(s), Bool(a%2 == 0)} {
			if _, ok := Coerce(v, StringKind); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
