// Package viz renders OLAP results as text: bar charts, grouped bar
// charts, histograms and crosstabs. It stands in for the charting surface
// of the BI tool in the paper's Figs 4–6 — the same aggregates, drawn in a
// terminal.
package viz

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/ddgms/ddgms/internal/cube"
)

// maxBarWidth is the bar length, in characters, of the largest value.
const maxBarWidth = 40

// BarChart draws one horizontal bar per label. Values must be
// non-negative; the largest value spans maxBarWidth characters.
func BarChart(w io.Writer, title string, labels []string, values []float64) error {
	if len(labels) != len(values) {
		return fmt.Errorf("viz: %d labels but %d values", len(labels), len(values))
	}
	var max float64
	labelWidth := 0
	for i, v := range values {
		if v < 0 {
			return fmt.Errorf("viz: negative value %g for %q", v, labels[i])
		}
		if v > max {
			max = v
		}
		if len(labels[i]) > labelWidth {
			labelWidth = len(labels[i])
		}
	}
	if title != "" {
		fmt.Fprintln(w, title)
	}
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(v / max * maxBarWidth)
		}
		if v > 0 && n == 0 {
			n = 1 // never render a non-zero value as empty
		}
		fmt.Fprintf(w, "  %-*s | %-*s %g\n", labelWidth, labels[i], maxBarWidth, strings.Repeat("█", n), v)
	}
	return nil
}

// GroupedBarChart draws a cell set as grouped bars: one group per result
// row, one bar per result column — the layout of the paper's Figs 5–6.
func GroupedBarChart(w io.Writer, title string, cs *cube.CellSet) error {
	if title != "" {
		fmt.Fprintln(w, title)
	}
	var max float64
	seriesWidth := 0
	for j := 0; j < cs.Columns(); j++ {
		if n := len(cs.ColLabel(j)); n > seriesWidth {
			seriesWidth = n
		}
	}
	for i := 0; i < cs.Rows(); i++ {
		for j := 0; j < cs.Columns(); j++ {
			if v := cs.CellFloat(i, j); v > max {
				max = v
			}
		}
	}
	for i := 0; i < cs.Rows(); i++ {
		fmt.Fprintf(w, "  %s\n", cs.RowLabel(i))
		for j := 0; j < cs.Columns(); j++ {
			v := cs.CellFloat(i, j)
			n := 0
			if max > 0 {
				n = int(v / max * maxBarWidth)
			}
			if v > 0 && n == 0 {
				n = 1
			}
			cell := cs.Cell(i, j)
			disp := cell.String()
			fmt.Fprintf(w, "    %-*s | %-*s %s\n", seriesWidth, cs.ColLabel(j), maxBarWidth, strings.Repeat("█", n), disp)
		}
	}
	return nil
}

// CrossTab renders a cell set as an aligned table with row and column
// headers, the textual twin of the BI Studio query grid in Fig 4.
func CrossTab(w io.Writer, title string, cs *cube.CellSet) error {
	if title != "" {
		fmt.Fprintln(w, title)
	}
	rowHeaderWidth := 0
	for i := 0; i < cs.Rows(); i++ {
		if n := len(cs.RowLabel(i)); n > rowHeaderWidth {
			rowHeaderWidth = n
		}
	}
	colWidths := make([]int, cs.Columns())
	for j := range colWidths {
		colWidths[j] = len(cs.ColLabel(j))
		for i := 0; i < cs.Rows(); i++ {
			if n := len(cs.Cell(i, j).String()); n > colWidths[j] {
				colWidths[j] = n
			}
		}
	}
	// Header.
	fmt.Fprintf(w, "  %-*s", rowHeaderWidth, "")
	for j := 0; j < cs.Columns(); j++ {
		fmt.Fprintf(w, "  %*s", colWidths[j], cs.ColLabel(j))
	}
	fmt.Fprintln(w)
	for i := 0; i < cs.Rows(); i++ {
		fmt.Fprintf(w, "  %-*s", rowHeaderWidth, cs.RowLabel(i))
		for j := 0; j < cs.Columns(); j++ {
			cell := cs.Cell(i, j)
			disp := cell.String()
			if cell.IsNA() {
				disp = "."
			}
			fmt.Fprintf(w, "  %*s", colWidths[j], disp)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// CrossTabWithTotals renders a cell set like CrossTab with an extra
// "total" column and row of axis sums — the margin view BI tools offer.
func CrossTabWithTotals(w io.Writer, title string, cs *cube.CellSet) error {
	if title != "" {
		fmt.Fprintln(w, title)
	}
	rowTotals := cs.RowTotals()
	colTotals := cs.ColTotals()
	grand := cs.Total()

	rowHeaderWidth := len("total")
	for i := 0; i < cs.Rows(); i++ {
		if n := len(cs.RowLabel(i)); n > rowHeaderWidth {
			rowHeaderWidth = n
		}
	}
	colWidths := make([]int, cs.Columns()+1)
	for j := 0; j < cs.Columns(); j++ {
		colWidths[j] = len(cs.ColLabel(j))
		for i := 0; i < cs.Rows(); i++ {
			if n := len(cs.Cell(i, j).String()); n > colWidths[j] {
				colWidths[j] = n
			}
		}
		if n := len(fmt.Sprintf("%g", colTotals[j])); n > colWidths[j] {
			colWidths[j] = n
		}
	}
	colWidths[cs.Columns()] = len("total")
	for _, rt := range rowTotals {
		if n := len(fmt.Sprintf("%g", rt)); n > colWidths[cs.Columns()] {
			colWidths[cs.Columns()] = n
		}
	}

	fmt.Fprintf(w, "  %-*s", rowHeaderWidth, "")
	for j := 0; j < cs.Columns(); j++ {
		fmt.Fprintf(w, "  %*s", colWidths[j], cs.ColLabel(j))
	}
	fmt.Fprintf(w, "  %*s\n", colWidths[cs.Columns()], "total")
	for i := 0; i < cs.Rows(); i++ {
		fmt.Fprintf(w, "  %-*s", rowHeaderWidth, cs.RowLabel(i))
		for j := 0; j < cs.Columns(); j++ {
			cell := cs.Cell(i, j)
			disp := cell.String()
			if cell.IsNA() {
				disp = "."
			}
			fmt.Fprintf(w, "  %*s", colWidths[j], disp)
		}
		fmt.Fprintf(w, "  %*g\n", colWidths[cs.Columns()], rowTotals[i])
	}
	fmt.Fprintf(w, "  %-*s", rowHeaderWidth, "total")
	for j := 0; j < cs.Columns(); j++ {
		fmt.Fprintf(w, "  %*g", colWidths[j], colTotals[j])
	}
	fmt.Fprintf(w, "  %*g\n", colWidths[cs.Columns()], grand)
	return nil
}

// Histogram draws the distribution of xs over nbins equal-width bins.
func Histogram(w io.Writer, title string, xs []float64, nbins int) error {
	if nbins < 1 {
		return fmt.Errorf("viz: nbins must be >= 1")
	}
	if len(xs) == 0 {
		return fmt.Errorf("viz: no samples")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	lo, hi := sorted[0], sorted[len(sorted)-1]
	if hi == lo {
		hi = lo + 1
	}
	width := (hi - lo) / float64(nbins)
	counts := make([]float64, nbins)
	labels := make([]string, nbins)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	for b := range labels {
		labels[b] = fmt.Sprintf("[%.3g,%.3g)", lo+float64(b)*width, lo+float64(b+1)*width)
	}
	return BarChart(w, title, labels, counts)
}
