package viz

import (
	"strings"
	"testing"

	"github.com/ddgms/ddgms/internal/cube"
	"github.com/ddgms/ddgms/internal/value"
)

func TestBarChart(t *testing.T) {
	var sb strings.Builder
	err := BarChart(&sb, "Patients by gender", []string{"F", "M"}, []float64{10, 40})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Patients by gender") {
		t.Error("missing title")
	}
	// M has 4x the value: its bar must be the full width, F's a quarter.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	fBars := strings.Count(lines[1], "█")
	mBars := strings.Count(lines[2], "█")
	if mBars != 40 || fBars != 10 {
		t.Errorf("bars F=%d M=%d", fBars, mBars)
	}
}

func TestBarChartEdgeCases(t *testing.T) {
	var sb strings.Builder
	if err := BarChart(&sb, "", []string{"a"}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must fail")
	}
	if err := BarChart(&sb, "", []string{"a"}, []float64{-1}); err == nil {
		t.Error("negative value must fail")
	}
	// All-zero values draw empty bars without dividing by zero.
	sb.Reset()
	if err := BarChart(&sb, "", []string{"a", "b"}, []float64{0, 0}); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "█") != 0 {
		t.Error("zero values must draw no bars")
	}
	// Tiny non-zero values still draw at least one glyph.
	sb.Reset()
	if err := BarChart(&sb, "", []string{"a", "b"}, []float64{0.001, 100}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if strings.Count(lines[0], "█") != 1 {
		t.Error("non-zero value rendered empty")
	}
}

func smallCellSet() *cube.CellSet {
	return &cube.CellSet{
		RowHeaders: [][]value.Value{{value.Str("70-75")}, {value.Str("75-80")}},
		ColHeaders: [][]value.Value{{value.Str("F")}, {value.Str("M")}},
		Cells: [][]value.Value{
			{value.Int(4), value.Int(9)},
			{value.Int(7), value.NA()},
		},
	}
}

func TestGroupedBarChart(t *testing.T) {
	var sb strings.Builder
	if err := GroupedBarChart(&sb, "Diabetes by age and gender", smallCellSet()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"70-75", "75-80", "F", "M", "9", "NA"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestCrossTab(t *testing.T) {
	var sb strings.Builder
	if err := CrossTab(&sb, "tab", smallCellSet()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "F") || !strings.Contains(lines[1], "M") {
		t.Errorf("header = %q", lines[1])
	}
	// NA cells render as ".".
	if !strings.Contains(lines[3], ".") {
		t.Errorf("NA cell not rendered as '.': %q", lines[3])
	}
}

func TestCrossTabWithTotals(t *testing.T) {
	var sb strings.Builder
	if err := CrossTabWithTotals(&sb, "margins", smallCellSet()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + 2 rows + totals
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Row totals: 4+9=13 and 7+NA=7; column totals 11 and 9; grand 20.
	if !strings.Contains(lines[2], "13") {
		t.Errorf("row 0 total missing: %q", lines[2])
	}
	if !strings.Contains(lines[3], "7") {
		t.Errorf("row 1 total missing: %q", lines[3])
	}
	last := lines[4]
	for _, want := range []string{"total", "11", "9", "20"} {
		if !strings.Contains(last, want) {
			t.Errorf("totals row missing %q: %q", want, last)
		}
	}
}

func TestHistogram(t *testing.T) {
	var sb strings.Builder
	xs := []float64{1, 1.5, 2, 2.5, 3, 9.5}
	if err := Histogram(&sb, "FBG distribution", xs, 3); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "[") != 3 {
		t.Errorf("bin labels missing:\n%s", out)
	}
	if err := Histogram(&sb, "", nil, 3); err == nil {
		t.Error("empty samples must fail")
	}
	if err := Histogram(&sb, "", xs, 0); err == nil {
		t.Error("zero bins must fail")
	}
	// Constant samples: all in one bin, no division by zero.
	sb.Reset()
	if err := Histogram(&sb, "", []float64{5, 5, 5}, 2); err != nil {
		t.Fatal(err)
	}
}
