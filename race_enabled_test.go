//go:build race

package ddgms_test

// raceEnabled reports whether the race detector is compiled in; alloc
// accounting is not stable under it.
const raceEnabled = true
