#!/bin/sh
# Benchmarks the shared execution core: the dictionary-coded parallel
# group-by kernel against the legacy scalar path, at both the storage
# layer (Table.GroupBy) and the cube layer (Engine.Execute), over the
# full DiScRi attendance fact table. Writes machine-readable results to
# BENCH_1.json next to this script's repo root.
set -eu
cd "$(dirname "$0")/.."

out=BENCH_1.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
  -bench 'BenchmarkGroupBy(Coded|Legacy)$|BenchmarkCubeExecute(Vectorized|Legacy)$' \
  -benchmem . | tee "$raw"

awk '
BEGIN { print "{"; n = 0 }
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  if (n++) printf ",\n"
  printf "  \"%s\": {\"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
    name, $2, $3, $5, $7
}
END { print "\n}" }
' "$raw" > "$out"

echo "wrote $out"
