#!/bin/sh
# Benchmarks a live failover as a client behind the routing front sees
# it: the interactive mix runs open-loop through the router while the
# primary is killed. Two modes share one harness:
#
#   bench_failover.sh         operator cutover — a human posts /promote
#                             to the replica; results in BENCH_9.json
#   bench_failover.sh -auto   unattended cutover — three nodes, the
#                             router's elector detects the death,
#                             checks quorum and promotes on its own;
#                             results in BENCH_10.json
#
# Both write machine-readable results at the repo root and fail when the
# cutover exceeds 5s to writable / 5s to first routed read, or when
# clients saw raw 5xx errors above 1% of requests — sheds (429/503 with
# Retry-After) are the designed degraded mode during the gap, error
# storms are not.
set -eu
cd "$(dirname "$0")/.."

bench='BenchmarkFailoverPromotion'
out=BENCH_9.json
if [ "${1:-}" = "-auto" ]; then
  bench='BenchmarkUnattendedFailover'
  out=BENCH_10.json
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# Promotion is one-way, so each iteration builds a fresh cluster; three
# iterations keep the run short while smoothing probe-phase luck.
go test -run '^$' \
  -bench "${bench}\$" \
  -benchtime "${FAILOVER_ITERS:-3}x" . | tee "$raw"

awk '
BEGIN { print "{"; n = 0 }
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  ns = ""; ttw = ""; ttfr = ""; shed = ""; err = ""
  for (i = 3; i <= NF; i++) {
    if ($i == "ns/op") ns = $(i - 1)
    if ($i == "ttw-ms") ttw = $(i - 1)
    if ($i == "ttfr-ms") ttfr = $(i - 1)
    if ($i == "shed-rate") shed = $(i - 1)
    if ($i == "err-rate") err = $(i - 1)
  }
  if (n++) printf ",\n"
  printf "  \"%s\": {\"iterations\": %s, \"ns_per_op\": %s", name, $2, ns
  if (ttw != "") printf ", \"time_to_writable_ms\": %s", ttw
  if (ttfr != "") printf ", \"time_to_first_routed_read_ms\": %s", ttfr
  if (shed != "") printf ", \"shed_rate\": %s", shed
  if (err != "") printf ", \"error_rate\": %s", err
  printf "}"
}
END {
  print "\n}"
  if (ttw == "" || ttfr == "" || err == "") { print "missing benchmark result" > "/dev/stderr"; exit 1 }
  printf "cutover: writable in %.1f ms, first routed read in %.1f ms, shed %.4f, errors %.4f\n", ttw, ttfr, shed, err > "/dev/stderr"
  if (ttw + 0 > 5000) { print "FAIL: time to writable above 5s" > "/dev/stderr"; exit 1 }
  if (ttfr + 0 > 5000) { print "FAIL: time to first routed read above 5s" > "/dev/stderr"; exit 1 }
  if (err + 0 > 0.01) { print "FAIL: clients saw >1% raw 5xx/transport errors (sheds are fine, error storms are not)" > "/dev/stderr"; exit 1 }
}
' "$raw" > "$out"

echo "wrote $out"
