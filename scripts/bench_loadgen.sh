#!/bin/sh
# Capacity surface: sweep the builtin interactive and analytics
# scenario mixes across a rate grid against the in-process self-serve
# target, then derive suggested governance flags from the knee. Writes
# BENCH_8.json at the repo root. The self-serve target pins an
# artificial 25ms per-query service time so the knee is a property of
# the governance flags (max-concurrent 8 -> ~320 rps theoretical
# ceiling), reproducible on any machine rather than an artifact of
# host speed. docs/CAPACITY.md interprets this exact output.
set -eu
cd "$(dirname "$0")/.."

go run ./cmd/loadgen \
  -scenario interactive,analytics \
  -sweep 20,60,120,240,360,480 \
  -duration "${LOADGEN_DURATION:-4s}" \
  -service-time 25ms \
  -max-concurrent 8 -queue 16 -queue-wait 200ms \
  -recommend \
  -out BENCH_8.json

echo "wrote BENCH_8.json"
