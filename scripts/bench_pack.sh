#!/bin/sh
# Benchmarks the compressed-execution kernels: the reference grouping
# forced onto each physical column encoding (flat, bit-packed, RLE) with
# the resident code-vector bytes reported per encoding, plus the
# coded-vs-legacy pair for context. Writes machine-readable results to
# BENCH_6.json next to this script's repo root.
set -eu
cd "$(dirname "$0")/.."

out=BENCH_6.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
  -bench 'BenchmarkGroupByEncoded/|BenchmarkGroupBy(Coded|Legacy)$' \
  -benchmem . | tee "$raw"

awk '
BEGIN { print "{"; n = 0 }
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  ns = ""; bytes = ""; allocs = ""; colbytes = ""
  for (i = 3; i <= NF; i++) {
    if ($i == "ns/op") ns = $(i - 1)
    if ($i == "B/op") bytes = $(i - 1)
    if ($i == "allocs/op") allocs = $(i - 1)
    if ($i == "column-bytes") colbytes = $(i - 1)
  }
  if (n++) printf ",\n"
  printf "  \"%s\": {\"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", \
    name, $2, ns, bytes, allocs
  if (colbytes != "") printf ", \"column_bytes\": %s", colbytes
  printf "}"
}
END { print "\n}" }
' "$raw" > "$out"

echo "wrote $out"
