#!/bin/sh
# Benchmarks bringing the warehouse current after 100 new attendances
# land in the OLTP store: the CDC + incremental refresh path (tail the
# WAL, delta-ETL the affected patients, merge the aggregate lattice)
# against a full snapshot + ETL + star rebuild. Writes machine-readable
# results to BENCH_4.json next to this script's repo root and fails if
# the incremental path is not at least 5x faster.
set -eu
cd "$(dirname "$0")/.."

out=BENCH_4.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
  -bench 'BenchmarkRefresh(Incremental|FullRebuild)100$' \
  -benchmem . | tee "$raw"

awk '
BEGIN { print "{"; n = 0 }
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  if (n++) printf ",\n"
  printf "  \"%s\": {\"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
    name, $2, $3, $5, $7
  ns[name] = $3
}
END {
  print "\n}"
  inc = ns["BenchmarkRefreshIncremental100"]
  full = ns["BenchmarkRefreshFullRebuild100"]
  if (inc == "" || full == "") { print "missing benchmark result" > "/dev/stderr"; exit 1 }
  ratio = full / inc
  printf "incremental refresh is %.1fx faster than full rebuild\n", ratio > "/dev/stderr"
  if (ratio < 5) { print "FAIL: required >= 5x advantage" > "/dev/stderr"; exit 1 }
}
' "$raw" > "$out"

echo "wrote $out"
