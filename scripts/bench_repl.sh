#!/bin/sh
# Benchmarks WAL-shipping replication: follower catch-up throughput
# (commit a backlog with no follower attached, then time a follower
# resuming from its durable cursor until it has applied everything) and
# steady-state replication lag (commit-to-visible latency with a
# continuously connected follower, p99 over all iterations). Writes
# machine-readable results to BENCH_7.json at the repo root and fails
# if catch-up drops below 2 MB/s or the steady-state p99 exceeds 250ms.
set -eu
cd "$(dirname "$0")/.."

out=BENCH_7.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
  -bench 'BenchmarkRepl(CatchUp|SteadyLag)$' \
  -benchtime 20x -benchmem . | tee "$raw"

awk '
BEGIN { print "{"; n = 0 }
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  ns = ""; mbs = ""; p99 = ""
  for (i = 3; i <= NF; i++) {
    if ($i == "ns/op") ns = $(i - 1)
    if ($i == "MB/s") mbs = $(i - 1)
    if ($i == "lag-p99-ms") p99 = $(i - 1)
  }
  if (n++) printf ",\n"
  printf "  \"%s\": {\"iterations\": %s, \"ns_per_op\": %s", name, $2, ns
  if (mbs != "") printf ", \"catch_up_mb_per_s\": %s", mbs
  if (p99 != "") printf ", \"steady_lag_p99_ms\": %s", p99
  printf "}"
  if (name == "BenchmarkReplCatchUp") catchup = mbs
  if (name == "BenchmarkReplSteadyLag") lag = p99
}
END {
  print "\n}"
  if (catchup == "" || lag == "") { print "missing benchmark result" > "/dev/stderr"; exit 1 }
  printf "follower catch-up %.2f MB/s, steady-state lag p99 %.2f ms\n", catchup, lag > "/dev/stderr"
  if (catchup + 0 < 2) { print "FAIL: catch-up below 2 MB/s" > "/dev/stderr"; exit 1 }
  if (lag + 0 > 250) { print "FAIL: steady-state lag p99 above 250ms" > "/dev/stderr"; exit 1 }
}
' "$raw" > "$out"

echo "wrote $out"
