#!/bin/sh
# Tier-1+ gate: everything the repo requires before a change lands.
# Extends the tier-1 command (go build + go test) with vet and the race
# detector, which the parallel execution kernel makes load-bearing.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== fault suite (crash recovery + WAL corruption, -count=2)"
go test -race -run 'Crash|Fault' -count=2 ./internal/oltp/ ./internal/faultfs/

echo "== metrics suite (registry + trace + exposition under race, -count=2)"
go test -race -count=2 ./internal/obs/
go test -race -run 'Trace|Metrics|ErrorCounter' ./internal/server/

echo "== refresh-equivalence soak (randomized commit/refresh interleavings, -count=2)"
go test -race -run 'TestRefresh' -count=2 ./internal/refresh/
go test -race -run 'TestTailWAL|TestTailer' ./internal/oltp/ ./internal/cdc/

echo "== refresh-equivalence soak per column encoding (flat/packed/rle forced)"
for enc in flat packed rle; do
	echo "   -- DDGMS_FORCE_ENCODING=$enc"
	DDGMS_FORCE_ENCODING=$enc go test -race -run 'TestRefresh' ./internal/refresh/
done

echo "== encoding equivalence battery (coded kernels vs scalar oracle)"
go test -race -run 'TestEncodingEquivalence|Fuzz' ./internal/exec/

echo "== allocation regression gate (arena kernel, no race detector)"
go test -run 'TestGroupByCodedAllocBudget|TestEncodedColumnBytesReduction' .

echo "== replication partition soak (fault sweep, kill/restart, figure equivalence)"
go test -race -run 'TestFaultSweep|TestFollowerRestart|TestPrimaryDiskBounded|TestSnapshotBootstrap' -count=2 ./internal/repl/
go test -race -count=1 ./internal/faultnet/
go test -race -run 'TestReplicaFiguresMatchPrimary' -count=1 ./internal/core/
go test -race -run 'TestApplyReplicated|TestPinWALAtDurable|TestRetentionFloor' -count=1 ./internal/oltp/

echo "== failover suite (promotion, fencing, routing front smoke)"
go test -race -count=2 ./internal/router/
go test -race -run 'TestRouterClassifiesEveryRoute|TestHandlePromote' ./internal/server/
sh scripts/failover_soak.sh -auto

echo "== governance suite (cancellation, admission, budgets, breaker)"
go test -race -run 'Cancel|Budget|Admission|Breaker|Timeout|Shutdown' \
	./internal/exec/ ./internal/govern/ ./internal/server/ ./internal/refresh/
sh scripts/soak.sh

echo "== loadgen smoke (open-loop run against self-serve target, zero 5xx)"
sh scripts/loadgen_smoke.sh

echo "check: OK"
