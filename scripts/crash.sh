#!/bin/sh
# Extended crash-recovery soak: the full deterministic injection-point
# sweep plus a multi-seed randomized crash loop. Slower than check.sh's
# fault gate; run before touching the WAL, recovery, or checkpoint code.
#
#   scripts/crash.sh [seeds]   # default 10 randomized seeds
set -eu
cd "$(dirname "$0")/.."

SEEDS="${1:-10}"

echo "== full injection-point sweep (every FS op, -race)"
go test -race -run 'TestCrashRecoveryEveryInjectionPoint' -count=1 \
	-timeout 20m ./internal/oltp/

echo "== randomized crash loop ($SEEDS seeds, -race)"
DDGMS_CRASH_SEEDS="$SEEDS" go test -race -run 'TestCrashRecoveryRandomSeeds' \
	-count=1 -timeout 30m -v ./internal/oltp/

echo "== remaining fault tests"
go test -race -run 'Crash|Fault' -count=1 ./internal/oltp/ ./internal/faultfs/

echo "crash: OK"
