#!/bin/sh
# Failover soak: the promotion and fencing invariants under the race
# detector, across the deterministic faultnet sweep:
#
#   - a promoted follower takes over writes at epoch+1 and surviving
#     followers re-home onto it (fault-swept: the re-home dial is hit
#     with drop/partial/corrupt/stall at every early op)
#   - the returned stale primary is fenced by the higher epoch before
#     it can fork the timeline (local commits refused)
#   - replica-mode round trips keep tx-id continuity and a verifiable
#     WAL tail across SetReplica(true) -> apply -> promote
#   - platform-level figures stay byte-identical to a never-failed
#     control across the whole kill -> promote -> re-home cycle
#
# This script is the operator entry point and the check.sh gate.
set -eu
cd "$(dirname "$0")/.."

echo "== promotion + fencing sweep (-race, -count=${FAILOVER_COUNT:-1})"
go test -race -count="${FAILOVER_COUNT:-1}" \
	-run 'TestPromote|TestStalePrimaryFencedByHigherEpoch|TestEpochAndCursorPersistence|TestPromotionEpochSurvivesRestart' \
	./internal/repl/

echo "== replica-mode promotion round trip (-race)"
go test -race -run 'TestReplicaPromotionRoundTrip|TestVerifyWALTail' ./internal/oltp/

echo "== platform failover soak: figures byte-equivalent to control (-race)"
go test -race -run 'TestFailoverSoakFiguresByteEquivalent' -count="${FAILOVER_COUNT:-1}" ./internal/core/

echo "failover soak: OK"
