#!/bin/sh
# Failover soak: the promotion and fencing invariants under the race
# detector, across the deterministic faultnet sweep:
#
#   - a promoted follower takes over writes at epoch+1 and surviving
#     followers re-home onto it (fault-swept: the re-home dial is hit
#     with drop/partial/corrupt/stall at every early op)
#   - the returned stale primary is fenced by the higher epoch before
#     it can fork the timeline (local commits refused)
#   - replica-mode round trips keep tx-id continuity and a verifiable
#     WAL tail across SetReplica(true) -> apply -> promote
#   - platform-level figures stay byte-identical to a never-failed
#     control across the whole kill -> promote -> re-home cycle
#
# With -auto it additionally runs the unattended chaos soak: the
# router's elector does the detection/quorum/promotion and self-heal
# does the rejoin, with no operator step anywhere, swept across
# multiple churn seeds (DDGMS_SOAK_SEEDS, space-separated). Each round
# asserts figures byte-identical to a never-failed control, exactly one
# election, and that goroutines settle back to baseline afterwards.
#
# This script is the operator entry point and the check.sh gate.
set -eu
cd "$(dirname "$0")/.."

echo "== promotion + fencing sweep (-race, -count=${FAILOVER_COUNT:-1})"
go test -race -count="${FAILOVER_COUNT:-1}" \
	-run 'TestPromote|TestStalePrimaryFencedByHigherEpoch|TestEpochAndCursorPersistence|TestPromotionEpochSurvivesRestart' \
	./internal/repl/

echo "== epoch + election journal crash sweeps (-race)"
go test -race -run 'TestEpochSaveCrashSweep|TestEpochFirstSaveCrashSweep' ./internal/repl/
go test -race -run 'TestElectionJournalCrashSweep' ./internal/router/

echo "== replica-mode promotion round trip (-race)"
go test -race -run 'TestReplicaPromotionRoundTrip|TestVerifyWALTail' ./internal/oltp/

echo "== platform failover soak: figures byte-equivalent to control (-race)"
go test -race -run 'TestFailoverSoakFiguresByteEquivalent' -count="${FAILOVER_COUNT:-1}" ./internal/core/

if [ "${1:-}" = "-auto" ]; then
	echo "== elector + detector suite (-race)"
	go test -race -run 'TestAutoFailover|TestConfirmedDown|TestProbeBackoff|TestIdempotentRead' \
		./internal/router/

	echo "== self-heal suite: fence hook, discovery demotion, survivor re-home (-race)"
	go test -race -run 'TestSelfHeal' ./internal/core/

	echo "== unattended chaos soak: kill -> detect -> elect -> promote -> rejoin (-race)"
	for seed in ${DDGMS_SOAK_SEEDS:-1 2 3}; do
		echo "   -- churn seed $seed"
		DDGMS_SOAK_SEED=$seed go test -race \
			-run 'TestUnattendedFailoverConvergence' -count=1 .
	done
fi

echo "failover soak: OK"
