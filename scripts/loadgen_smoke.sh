#!/bin/sh
# Loadgen smoke gate: boot the in-process self-serve target, fire a
# tiny constant-rate open-loop run at it, and fail on zero throughput
# or any 5xx. This keeps the load generator itself honest (scenarios
# parse, every endpoint routes, the reporter counts) and catches
# regressions where a healthy unloaded server starts erroring.
set -eu
cd "$(dirname "$0")/.."

go run ./cmd/loadgen -smoke -scenario interactive -duration 2s
go run ./cmd/loadgen -smoke -scenario analytics -duration 2s
