#!/bin/sh
# Captures a CPU profile from a running `ddgms serve -pprof` instance.
#
#   scripts/profile.sh [host:port] [seconds]
#
# Defaults to 127.0.0.1:8360 and a 10 second window. The profile is
# written to cpu-<timestamp>.pprof in the current directory; inspect it
# with `go tool pprof cpu-*.pprof` (try `top20`, then `web` for a call
# graph). Drive query load (e.g. the curl session in README.md) while
# the capture runs, or the profile will be all idle time.
set -eu

addr="${1:-127.0.0.1:8360}"
seconds="${2:-10}"
out="cpu-$(date +%Y%m%d-%H%M%S).pprof"

echo "capturing ${seconds}s CPU profile from http://${addr}/debug/pprof/profile ..."
if ! curl -sf --max-time "$((seconds + 30))" \
    "http://${addr}/debug/pprof/profile?seconds=${seconds}" -o "$out"; then
  echo "profile capture failed — is serve running with -pprof on ${addr}?" >&2
  exit 1
fi
echo "wrote $out"
echo "inspect with: go tool pprof $out"
