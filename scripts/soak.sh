#!/bin/sh
# Overload soak: drives the governed server through a sustained
# overload (16 streams against 2 slots) and a cancellation storm under
# the race detector, asserting the resource-governance invariants:
#
#   - shed requests answer 429/503 with Retry-After, never 504
#   - client cancellations release their admission slots
#   - goroutine count returns to baseline after the storm
#   - admitted-query p99 stays bounded by queue wait + service time
#
# The harness lives in internal/experiments (RunSoak); this script is
# the operator entry point and the check.sh gate.
set -eu
cd "$(dirname "$0")/.."

echo "== overload soak (-race, -count=${SOAK_COUNT:-1})"
go test -race -v -run 'TestSoak' -count="${SOAK_COUNT:-1}" ./internal/experiments/

echo "soak: OK"
