package ddgms_test

// The unattended-failover soak: a three-node cluster behind the
// auto-failover routing front loses its primary with NO operator in the
// loop. The router's failure detector confirms the death, the
// quorum-gated elector promotes the best follower, the stranded
// follower re-homes itself, and when the old primary returns it
// discovers the successor and rejoins as a follower — every recovery
// machine-initiated. Throughout, the figures an analyst renders are
// byte-identical to a control platform that never failed, the election
// journal records exactly one promotion, and teardown proves no
// recovery round leaked a goroutine.
//
// scripts/failover_soak.sh -auto runs this under -race across multiple
// seeds (DDGMS_SOAK_SEED varies the churn stream).

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/ddgms/ddgms/internal/core"
	"github.com/ddgms/ddgms/internal/oltp"
	"github.com/ddgms/ddgms/internal/router"
	"github.com/ddgms/ddgms/internal/server"
	"github.com/ddgms/ddgms/internal/value"
	"github.com/ddgms/ddgms/internal/viz"
)

func soakSeed() int64 {
	if s := os.Getenv("DDGMS_SOAK_SEED"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			return n
		}
	}
	return 1
}

// churnVisit re-books a random attendance with drifted glucose — the
// same deterministic churn the core-level soaks use, applied here
// directly to a platform's store so the control platform can replay the
// identical sequence from the identical seed.
func churnVisit(t *testing.T, p *core.Platform, rng *rand.Rand) {
	t.Helper()
	st := p.Store()
	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	row := snap.Row(rng.Intn(snap.Len()))
	schema := st.Schema()
	if j, ok := schema.Lookup("VisitDate"); ok && !row[j].IsNA() {
		row[j] = value.Time(row[j].Time().AddDate(0, 3, rng.Intn(29)-14))
	}
	if j, ok := schema.Lookup("FBG"); ok && !row[j].IsNA() {
		row[j] = value.Float(row[j].Float() + rng.NormFloat64()*0.4)
	}
	tx := st.Begin()
	if _, err := tx.Insert(oltp.Row(row)); err != nil {
		tx.Rollback()
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func soakFigure(t *testing.T, p *core.Platform) []byte {
	t.Helper()
	cs, err := p.QueryMDX(`SELECT {[PersonalInformation].[Gender].MEMBERS} ON COLUMNS,
		{[MedicalCondition].[DiabetesStatus].MEMBERS} ON ROWS FROM [MedicalMeasures]`)
	if err != nil {
		t.Fatalf("QueryMDX: %v", err)
	}
	var buf bytes.Buffer
	if err := viz.CrossTab(&buf, "attendances", cs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func soakSnapshot(t *testing.T, p *core.Platform) []byte {
	t.Helper()
	tbl, err := p.Store().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func drainRefresh(t *testing.T, p *core.Platform) {
	t.Helper()
	for {
		n, err := p.Refresh()
		if err != nil {
			t.Fatalf("Refresh: %v", err)
		}
		if n == 0 {
			return
		}
	}
}

func waitStoresEqual(t *testing.T, what string, a, b *core.Platform) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		ab, bb := soakSnapshot(t, a), soakSnapshot(t, b)
		if bytes.Equal(ab, bb) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: stores never converged (%d vs %d bytes)", what, len(ab), len(bb))
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func waitFollowerOf(t *testing.T, name string, p *core.Platform, primaryAddr string) {
	t.Helper()
	deadline := time.Now().Add(25 * time.Second)
	for {
		st, ok := p.Replication()
		if ok && st.Role == "follower" && st.Primary == primaryAddr && st.Connected {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never re-homed to %s: %+v ok=%v", name, primaryAddr, st, ok)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func TestUnattendedFailoverConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node soak")
	}
	baseGoroutines := runtime.NumGoroutine()
	seed := soakSeed()
	t.Logf("soak seed %d", seed)

	dir := t.TempDir()
	raw := benchCohort(t, 40)

	// The never-failed control replays the identical churn stream.
	control := core.New(core.Config{DataDir: filepath.Join(dir, "control")})
	defer control.Close()
	if err := control.OpenStore(raw.Schema()); err != nil {
		t.Fatal(err)
	}
	if err := control.Store().LoadTable(raw); err != nil {
		t.Fatal(err)
	}
	startFollowing(t, control, filepath.Join(dir, "control-cdc"))

	// Node A: initial primary with a restartable HTTP face (it must come
	// back on the same address the router knows).
	pa := core.New(core.Config{DataDir: filepath.Join(dir, "a")})
	defer pa.Close()
	if err := pa.OpenStore(raw.Schema()); err != nil {
		t.Fatal(err)
	}
	if err := pa.Store().LoadTable(raw); err != nil {
		t.Fatal(err)
	}
	startFollowing(t, pa, filepath.Join(dir, "a-cdc"))
	lnRA := listen(t)
	if err := pa.AttachPrimary(core.ReplicateListenConfig{
		Listener:       lnRA,
		EpochDir:       filepath.Join(dir, "a-repl"),
		HeartbeatEvery: 20 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	aHandler := server.New(pa)
	lnHA := listen(t)
	aAddr := lnHA.Addr().String()
	aSrv := &http.Server{Handler: aHandler}
	go aSrv.Serve(lnHA)
	defer aSrv.Close()

	// Nodes B and C: replicas bootstrapped from A.
	mkReplica := func(name string) *core.Platform {
		p := core.New(core.Config{DataDir: filepath.Join(dir, name)})
		if err := p.OpenStore(raw.Schema()); err != nil {
			t.Fatal(err)
		}
		if err := p.AttachReplica(core.ReplicateFromConfig{
			PrimaryAddr: lnRA.Addr().String(),
			ID:          name,
			CursorDir:   filepath.Join(dir, name+"-cursor"),
		}); err != nil {
			t.Fatal(err)
		}
		select {
		case <-p.ReplicaReady():
		case <-time.After(30 * time.Second):
			t.Fatalf("%s never synced", name)
		}
		startFollowing(t, p, filepath.Join(dir, name+"-cdc"))
		p.SetPromoteListen("127.0.0.1:0")
		return p
	}
	pb := mkReplica("b")
	defer pb.Close()
	bSrv := httptest.NewServer(server.New(pb))
	defer bSrv.Close()
	pc := mkReplica("c")
	defer pc.Close()
	cSrv := httptest.NewServer(server.New(pc))
	defer cSrv.Close()

	// The auto-failover front.
	rt, err := router.New(router.Config{
		Backends:         []string{"http://" + aAddr, bSrv.URL, cSrv.URL},
		PollEvery:        30 * time.Millisecond,
		MaxStaleness:     5 * time.Second,
		AutoFailover:     true,
		ElectionDir:      filepath.Join(dir, "election"),
		FailureThreshold: 3,
		SuspicionWindow:  150 * time.Millisecond,
		PromoteTimeout:   3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt)
	defer front.Close()

	// Self-heal on every node, all discovering through the front (whose
	// /replication proxies to whatever primary the router has resolved).
	healClient := &http.Client{}
	defer healClient.CloseIdleConnections()
	selfHeal := func(p *core.Platform, id, cursorDir string) {
		if err := p.EnableSelfHeal(core.SelfHealConfig{
			Peers:        []string{front.URL},
			ID:           id,
			CursorDir:    cursorDir,
			WatchEvery:   40 * time.Millisecond,
			RehomeAfter:  250 * time.Millisecond,
			BackoffMin:   25 * time.Millisecond,
			ProbeTimeout: 500 * time.Millisecond,
			Client:       healClient,
		}); err != nil {
			t.Fatal(err)
		}
	}
	selfHeal(pa, "a", filepath.Join(dir, "a-repl"))
	selfHeal(pb, "b", filepath.Join(dir, "b-cursor"))
	selfHeal(pc, "c", filepath.Join(dir, "c-cursor"))

	// Round 1: steady state. Cluster figures match the control exactly.
	rngCluster := rand.New(rand.NewSource(seed))
	rngControl := rand.New(rand.NewSource(seed))
	for i := 0; i < 12; i++ {
		churnVisit(t, pa, rngCluster)
		churnVisit(t, control, rngControl)
	}
	waitStoresEqual(t, "pre-kill b", pa, pb)
	waitStoresEqual(t, "pre-kill c", pa, pc)
	drainRefresh(t, pa)
	drainRefresh(t, control)
	controlFig := soakFigure(t, control)
	if fig := soakFigure(t, pa); !bytes.Equal(fig, controlFig) {
		t.Fatalf("pre-kill figures diverged:\ncluster:\n%s\ncontrol:\n%s", fig, controlFig)
	}

	// A finding through the front lands in the KB and replicates.
	finding := func(statement string) []byte {
		b, _ := json.Marshal(map[string]string{
			"topic": "soak", "statement": statement, "source": "unattended-soak",
		})
		return b
	}
	pollThroughFront(t, front.URL, "/findings", finding("pre-kill baseline"), time.Now())

	// The primary dies: HTTP face and replication listener, at once.
	// Nobody will touch the cluster from here until the assertions.
	aSrv.Close()
	pa.StopReplication()
	killedAt := time.Now()

	// Unattended time-to-writable and time-to-first-routed-read.
	ttw := pollThroughFront(t, front.URL, "/findings", finding("post-kill probe"), killedAt)
	queryBody, _ := json.Marshal(map[string]string{
		"mdx": "SELECT {[PersonalInformation].[Gender].MEMBERS} ON COLUMNS FROM [MedicalMeasures]",
	})
	ttfr := pollThroughFront(t, front.URL, "/query", queryBody, killedAt)
	t.Logf("unattended ttw=%s ttfr=%s", ttw, ttfr)

	// Exactly one election, epoch advanced once.
	cl := rt.Cluster()
	if cl.Elections != 1 {
		t.Fatalf("elections = %d, want exactly 1 (double promotion?): %+v", cl.Elections, cl)
	}
	if cl.Epoch != 2 || cl.Primary == "" {
		t.Fatalf("cluster after election: %+v, want epoch 2 with a primary", cl)
	}
	var winner, survivor *core.Platform
	var winnerName, survivorName string
	switch cl.Primary {
	case bSrv.URL:
		winner, survivor, winnerName, survivorName = pb, pc, "b", "c"
	case cSrv.URL:
		winner, survivor, winnerName, survivorName = pc, pb, "c", "b"
	default:
		t.Fatalf("elected primary %q is neither follower", cl.Primary)
	}
	wst, ok := winner.Replication()
	if !ok || wst.Role != "primary" || wst.Epoch != 2 || wst.Fenced {
		t.Fatalf("winner %s status: %+v ok=%v", winnerName, wst, ok)
	}

	// The stranded follower re-homes itself onto the new primary.
	waitFollowerOf(t, "survivor "+survivorName, survivor, wst.Addr)

	// The old primary returns on its original address and data, resuming
	// its durable epoch-1 claim — then discovers the successor and
	// rejoins as a follower with no one telling it to.
	lnHA2, err := net.Listen("tcp", aAddr)
	if err != nil {
		t.Fatalf("rebinding old primary's address: %v", err)
	}
	aSrv = &http.Server{Handler: aHandler}
	go aSrv.Serve(lnHA2)
	defer aSrv.Close()
	lnRA2 := listen(t)
	if err := pa.AttachPrimary(core.ReplicateListenConfig{
		Listener:       lnRA2,
		EpochDir:       filepath.Join(dir, "a-repl"),
		HeartbeatEvery: 20 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	waitFollowerOf(t, "returned ex-primary a", pa, wst.Addr)

	// Round 2: churn on the new primary; the cluster must stay in
	// lockstep with the never-failed control.
	for i := 0; i < 12; i++ {
		churnVisit(t, winner, rngCluster)
		churnVisit(t, control, rngControl)
	}
	drainRefresh(t, winner)
	drainRefresh(t, control)
	controlFig = soakFigure(t, control)
	if fig := soakFigure(t, winner); !bytes.Equal(fig, controlFig) {
		t.Fatalf("post-failover figures diverged:\ncluster:\n%s\ncontrol:\n%s", fig, controlFig)
	}
	waitStoresEqual(t, "post-failover survivor", winner, survivor)
	waitStoresEqual(t, "post-failover rejoined a", winner, pa)
	drainRefresh(t, survivor)
	drainRefresh(t, pa)
	if fig := soakFigure(t, survivor); !bytes.Equal(fig, controlFig) {
		t.Fatalf("survivor %s figure diverged from control:\ngot:\n%s\nwant:\n%s", survivorName, fig, controlFig)
	}
	if fig := soakFigure(t, pa); !bytes.Equal(fig, controlFig) {
		t.Fatalf("rejoined a figure diverged from control:\ngot:\n%s\nwant:\n%s", fig, controlFig)
	}

	// The findings KB converged everywhere too (it rides the same WAL).
	waitFindingsEverywhere(t, []string{"http://" + aAddr, bSrv.URL, cSrv.URL},
		"pre-kill baseline", "post-kill probe")

	// Still exactly one election; the returned A is a healthy follower.
	cl = rt.Cluster()
	if cl.Elections != 1 || cl.Epoch != 2 {
		t.Fatalf("final cluster: elections=%d epoch=%d, want 1/2", cl.Elections, cl.Epoch)
	}

	// Teardown everything and prove the recovery rounds leaked nothing.
	front.Close()
	rt.Close()
	aSrv.Close()
	bSrv.Close()
	cSrv.Close()
	pa.Close()
	pb.Close()
	pc.Close()
	control.Close()
	healClient.CloseIdleConnections()
	http.DefaultClient.CloseIdleConnections()
	waitGoroutinesSettle(t, baseGoroutines)
}

// waitFindingsEverywhere polls each node's own /findings endpoint until
// every statement is present locally — proof the KB writes replicated
// through the WAL to all survivors of the failover.
func waitFindingsEverywhere(t *testing.T, nodes []string, statements ...string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for _, base := range nodes {
		for {
			resp, err := http.Get(base + "/findings?q=soak")
			var body []byte
			if err == nil {
				body = readAll(resp)
			}
			missing := false
			for _, s := range statements {
				if !strings.Contains(string(body), s) {
					missing = true
				}
			}
			if err == nil && !missing {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s/findings never converged (err %v): %s", base, err, body)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
}

func readAll(resp *http.Response) []byte {
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.Bytes()
}

// waitGoroutinesSettle fails the test if, after full teardown, the
// goroutine count never returns near its pre-test baseline — a leaked
// rejoin loop, watchdog, or elector would hold it up.
func waitGoroutinesSettle(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+8 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after recovery rounds: %d goroutines (baseline %d)\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
